// Crash recovery of a journaled sweep. Two layers:
//
//   * a deterministic variant driven by the cell budget — a "crash" is just
//     a run that stops after k cells, and resuming must execute exactly the
//     delta (and, once complete, exactly zero cells);
//   * a genuine kill — a forked child sweeps slice by slice until SIGKILLed
//     mid-run, and the parent resumes from whatever the journal captured
//     (including a possibly torn final record).
//
// In every case the final exports must be byte-identical to a clean,
// uncrashed, unjournaled sweep of the same grid.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "driver/export.hpp"
#include "driver/sweep.hpp"
#include "support/journal.hpp"

namespace csr {
namespace {

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
  }
  ~ScopedFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

driver::SweepGrid recovery_grid() {
  driver::SweepGrid grid;
  grid.benchmarks = {"IIR Filter", "All-pole Filter"};
  grid.trip_counts = {23};
  grid.factors = {2, 3};
  return grid;
}

TEST(CrashRecovery, BudgetedRunsResumeWithExactDeltas) {
  const driver::SweepGrid grid = recovery_grid();
  const std::size_t total = grid.cells().size();
  ASSERT_GE(total, 6u);
  const ScopedFile journal(::testing::TempDir() + "csr_crash_budget.tsv");

  // Clean reference: no journal, no budget, no crash.
  driver::SweepOptions plain;
  plain.threads = 2;
  const auto reference = driver::run_sweep(grid, plain);
  const std::string ref_csv = driver::to_csv(reference);
  const std::string ref_json = driver::to_json(reference);

  driver::SweepOptions options;
  options.threads = 2;
  options.journal_path = journal.path();

  // Run 1 "crashes" after a third of the grid.
  options.cell_budget = total / 3;
  driver::SweepStats first;
  const auto partial = driver::run_sweep(grid, options, &first);
  EXPECT_EQ(first.executed, total / 3);
  EXPECT_EQ(first.budget_expired, total - total / 3);
  EXPECT_EQ(first.cache_hits, 0u);
  std::size_t unevaluated = 0;
  for (const auto& r : partial) unevaluated += r.evaluated ? 0 : 1;
  EXPECT_EQ(unevaluated, first.budget_expired);

  // Run 2 resumes: replays the journaled third, executes only the delta.
  options.cell_budget = 0;
  driver::SweepStats second;
  const auto resumed = driver::run_sweep(grid, options, &second);
  EXPECT_EQ(second.cache_hits, total / 3);
  EXPECT_EQ(second.executed, total - total / 3);
  EXPECT_EQ(driver::to_csv(resumed), ref_csv);
  EXPECT_EQ(driver::to_json(resumed), ref_json);

  // Run 3: the journal is complete — zero cells re-execute.
  driver::SweepStats third;
  const auto replayed = driver::run_sweep(grid, options, &third);
  EXPECT_EQ(third.executed, 0u);
  EXPECT_EQ(third.cache_hits, total);
  EXPECT_EQ(driver::to_csv(replayed), ref_csv);
  EXPECT_EQ(driver::to_json(replayed), ref_json);
}

TEST(CrashRecovery, SigkilledSweepResumesFromTheJournal) {
  const driver::SweepGrid grid = recovery_grid();
  const std::size_t total = grid.cells().size();
  const ScopedFile journal(::testing::TempDir() + "csr_crash_kill.tsv");

  driver::SweepOptions plain;
  plain.threads = 2;
  const auto reference = driver::run_sweep(grid, plain);
  const std::string ref_csv = driver::to_csv(reference);
  const std::string ref_json = driver::to_json(reference);

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: sweep one new cell at a time with a pause between slices, so
    // the parent's SIGKILL reliably lands mid-run. _exit, never exit — no
    // gtest teardown in the child.
    driver::SweepOptions options;
    options.threads = 1;
    options.journal_path = journal.path();
    options.cell_budget = 1;
    for (std::size_t slice = 0; slice < total; ++slice) {
      (void)driver::run_sweep(grid, options);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::_exit(0);
  }

  // Parent: give the child time to journal a few slices, then kill it cold.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The journal holds whatever the child finished — possibly with a torn
  // final record, which open() must drop silently.
  driver::SweepOptions options;
  options.threads = 2;
  options.journal_path = journal.path();
  driver::SweepStats resumed_stats;
  const auto resumed = driver::run_sweep(grid, options, &resumed_stats);
  EXPECT_GE(resumed_stats.cache_hits, 1u)
      << "child was killed before journaling anything — raise the delay";
  EXPECT_EQ(resumed_stats.cache_hits + resumed_stats.executed, total);
  EXPECT_LE(resumed_stats.journal_dropped, 1u);  // at most the torn tail
  EXPECT_EQ(driver::to_csv(resumed), ref_csv);
  EXPECT_EQ(driver::to_json(resumed), ref_json);

  // And once recovered, a further run re-executes nothing at all.
  driver::SweepStats final_stats;
  const auto replayed = driver::run_sweep(grid, options, &final_stats);
  EXPECT_EQ(final_stats.executed, 0u);
  EXPECT_EQ(final_stats.cache_hits, total);
  EXPECT_EQ(driver::to_csv(replayed), ref_csv);
}

}  // namespace
}  // namespace csr
