// The nested (2-D) family through the serving tier: query validation for
// the "shapes" axis, byte-identity of served /v1/sweep bodies with the
// offline exports for nested benchmarks, and the journal-key contract —
// nested cells append their shape to the shared content key while classic
// 1-D cells keep the exact pre-nested framing (existing journals and
// warm-started caches must keep matching).

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/io.hpp"
#include "driver/config.hpp"
#include "driver/export.hpp"
#include "mdfg/builders.hpp"
#include "mdfg/io.hpp"
#include "serve/service.hpp"
#include "support/hash.hpp"

namespace csr::serve {
namespace {

TEST(NestedParseQuery, AcceptsNestedBenchmarksAndShapes) {
  QueryResult rejection;
  const auto query = parse_query(
      R"({"benchmarks":["conv3x3","jacobi5"],"shapes":[[3,24],[5,19]],
          "transforms":["original","retimed_csr"]})",
      &rejection);
  ASSERT_TRUE(query.has_value()) << rejection.error;
  const driver::SweepGrid& grid = query->config.grid();
  ASSERT_EQ(grid.shapes.size(), 2u);
  EXPECT_EQ(grid.shapes[0], (driver::LoopShape{3, 24}));
  EXPECT_EQ(grid.shapes[1], (driver::LoopShape{5, 19}));
}

TEST(NestedParseQuery, RejectsMalformedShapes) {
  const char* bad[] = {
      R"({"benchmarks":["conv3x3"],"shapes":"nope"})",
      R"({"benchmarks":["conv3x3"],"shapes":[3,24]})",
      R"({"benchmarks":["conv3x3"],"shapes":[[3]]})",
      R"({"benchmarks":["conv3x3"],"shapes":[[3,24,5]]})",
      R"({"benchmarks":["conv3x3"],"shapes":[[0,24]]})",
      R"({"benchmarks":["conv3x3"],"shapes":[[3,-1]]})",
      R"({"benchmarks":["conv3x3"],"shapes":[]})",
  };
  for (const char* body : bad) {
    QueryResult rejection;
    EXPECT_FALSE(parse_query(body, &rejection).has_value()) << body;
    EXPECT_EQ(rejection.status, 422) << body;
  }
}

TEST(NestedSweepService, ServedBodyIsByteIdenticalToOfflineExport) {
  ServiceOptions options;
  SweepService service(options);

  QueryResult rejection;
  const auto query = parse_query(
      R"({"benchmarks":["tline2d","iir2d"],"shapes":[[4,16]],
          "transforms":["original","retimed","retimed_csr"]})",
      &rejection);
  ASSERT_TRUE(query.has_value()) << rejection.error;

  const QueryResult cold = service.execute(*query);
  ASSERT_EQ(cold.status, 200) << cold.error;

  driver::SweepConfig config;
  config.grid() = query->config.grid();
  const driver::SweepRun run = driver::run_sweep(config);
  EXPECT_EQ(cold.body, driver::to_json(run.results));

  // Warm: every nested cell replayed from the LRU, same bytes.
  const QueryResult warm = service.execute(*query);
  ASSERT_EQ(warm.status, 200);
  EXPECT_EQ(warm.cache_hits, warm.cells);
  EXPECT_EQ(warm.body, cold.body);

  // CSV carries the nested columns for the same cells.
  auto csv_query = *query;
  csv_query.format = driver::ExportFormat::kCsv;
  const QueryResult csv = service.execute(csv_query);
  ASSERT_EQ(csv.status, 200);
  EXPECT_EQ(csv.body, driver::to_csv(run.results));
  EXPECT_NE(csv.body.find("loop_dims,rows,cols"), std::string::npos);
}

TEST(NestedKeyPinning, NestedCellsAppendShapeToTheSharedKey) {
  driver::SweepCell cell;
  cell.benchmark = "jacobi5";
  cell.transform = driver::Transform::kRetimedCsr;
  cell.rows = 4;
  cell.cols = 16;
  cell.n = 64;
  driver::SweepOptions options;

  const std::string mdfg_text = to_text(mdfg::find_md_benchmark("jacobi5")->factory());
  const std::string expected =
      content_key('c', {"sweep-v3", cell.benchmark, mdfg_text,
                        std::string(to_string(cell.engine)),
                        std::string(to_string(cell.exec)),
                        std::string(to_string(cell.transform)),
                        std::to_string(cell.factor), std::to_string(cell.n),
                        options.verify ? "1" : "0", options.machine.description(),
                        std::to_string(cell.rows), std::to_string(cell.cols)});
  EXPECT_EQ(driver::journal_key(cell, options), expected);

  // Shape is part of the identity: a transposed nest is a different cell.
  driver::SweepCell transposed = cell;
  transposed.rows = 16;
  transposed.cols = 4;
  EXPECT_NE(driver::journal_key(transposed, options),
            driver::journal_key(cell, options));
}

TEST(NestedKeyPinning, ClassicCellsKeepThePreNestedFraming) {
  // 1-D cells must hash exactly as before the nested axis existed — the
  // ten-field framing with no shape suffix — so existing journal files and
  // warm-started caches keep matching byte for byte.
  driver::SweepCell cell;
  cell.benchmark = "IIR Filter";
  cell.transform = driver::Transform::kRetimed;
  driver::SweepOptions options;

  std::string dfg_text;
  for (const auto& info : benchmarks::all_graphs()) {
    if (info.name == cell.benchmark) dfg_text = to_text(info.factory());
  }
  ASSERT_FALSE(dfg_text.empty());

  const std::string expected =
      content_key('c', {"sweep-v3", cell.benchmark, dfg_text,
                        std::string(to_string(cell.engine)),
                        std::string(to_string(cell.exec)),
                        std::string(to_string(cell.transform)),
                        std::to_string(cell.factor), std::to_string(cell.n),
                        options.verify ? "1" : "0",
                        options.machine.description()});
  EXPECT_EQ(driver::journal_key(cell, options), expected);
}

}  // namespace
}  // namespace csr::serve
