// The native compiled-kernel engine (src/native/): exact-semantics C from
// the emitter, compiled by the host toolchain behind a content-hash cache,
// dlopened and cross-diffed against the VM through the StateView interface.
// Includes the regression tests for graceful degradation when the host
// compiler is missing or broken (bogus-compiler injection via both
// CompileOptions::compiler and the CSR_CC environment variable).

#include <gtest/gtest.h>

#include <cstdlib>

#include "benchmarks/benchmarks.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "driver/config.hpp"
#include "native/compile.hpp"
#include "native/engine.hpp"
#include "retiming/opt.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

/// Restores (or clears) an environment variable on scope exit so CSR_CC
/// injection cannot leak into other tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_value_ = false;
};

LoopProgram csr_program(const DataFlowGraph& g, std::int64_t n) {
  return retimed_csr_program(g, minimum_period_retiming(g).retiming, n);
}

TEST(NativeCompile, HostCompilerIsDetected) {
  // The C++ compiler that built this test is baked in as the fallback
  // driver, so a build machine is always able to run the native engine.
  EXPECT_FALSE(native::default_compiler().empty());
  EXPECT_TRUE(native::native_available());
}

TEST(NativeCompile, SecondCompileIsACacheHit) {
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  CEmitterOptions emit;
  emit.function_name = "csr_kernel";
  emit.semantics = CEmitterOptions::Semantics::kExact;
  const std::string source =
      to_c_source(csr_program(benchmarks::iir_filter(), 23), emit);

  const native::CompileResult first = native::compile_shared_object(source);
  ASSERT_TRUE(first.ok) << first.diagnostic;
  const auto before = native::compile_cache_stats();
  const native::CompileResult second = native::compile_shared_object(source);
  const auto after = native::compile_cache_stats();
  ASSERT_TRUE(second.ok) << second.diagnostic;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.shared_object, first.shared_object);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(NativeCompile, DistinctFlagsMissTheCache) {
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  CEmitterOptions emit;
  emit.function_name = "csr_kernel";
  emit.semantics = CEmitterOptions::Semantics::kExact;
  const std::string source =
      to_c_source(csr_program(benchmarks::iir_filter(), 23), emit);
  native::CompileOptions o0;  // cached by SecondCompileIsACacheHit
  const native::CompileResult plain = native::compile_shared_object(source, o0);
  ASSERT_TRUE(plain.ok);
  native::CompileOptions o1;
  o1.flags += " -O1";
  const native::CompileResult tuned = native::compile_shared_object(source, o1);
  ASSERT_TRUE(tuned.ok) << tuned.diagnostic;
  EXPECT_NE(tuned.shared_object, plain.shared_object);
}

TEST(NativeCompile, BogusCompilerOptionFailsGracefully) {
  native::CompileOptions options;
  options.compiler = "/nonexistent/csr-test-cc";
  const native::CompileResult r = native::compile_shared_object("int x;", options);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_TRUE(r.shared_object.empty());
  EXPECT_NE(r.diagnostic.find("/nonexistent/csr-test-cc"), std::string::npos)
      << r.diagnostic;
  // Failures must never be cached: a retry re-runs the compiler.
  const auto before = native::compile_cache_stats();
  EXPECT_FALSE(native::compile_shared_object("int x;", options).ok);
  EXPECT_EQ(native::compile_cache_stats().failures, before.failures + 1);
}

TEST(NativeCompile, BogusCompilerEnvDisablesAvailability) {
  // CSR_CC is honored verbatim with no fallback, so a bogus value must turn
  // native_available() off — and back on once the variable is gone.
  {
    ScopedEnv env("CSR_CC", "/nonexistent/csr-test-cc");
    EXPECT_FALSE(native::native_available());
    EXPECT_EQ(native::default_compiler(), "/nonexistent/csr-test-cc");
  }
  EXPECT_TRUE(native::native_available());
}

TEST(NativeEngine, RunFailsGracefullyWithBogusCompiler) {
  native::CompileOptions options;
  options.compiler = "/nonexistent/csr-test-cc";
  const native::NativeOutcome out =
      native::run_native(csr_program(benchmarks::iir_filter(), 17), options);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status, native::NativeStatus::kCompileFailed);
  EXPECT_FALSE(out.diagnostic.empty());
}

TEST(NativeEngine, MatchesVmOnRetimedCsr) {
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  const DataFlowGraph g = benchmarks::iir_filter();
  const std::int64_t n = 29;
  const LoopProgram p = csr_program(g, n);
  const native::NativeOutcome out = native::run_native(p);
  ASSERT_TRUE(out.ok()) << out.diagnostic;

  const Machine vm = run_program(p);
  const auto arrays = array_names(g);
  EXPECT_TRUE(diff_observable_state(MachineView(vm), out.result, arrays, n).empty());
  EXPECT_TRUE(check_write_discipline(out.result, arrays, n).empty());
  EXPECT_EQ(out.result.executed_statements(), vm.executed_statements());
  EXPECT_EQ(out.result.disabled_statements(), vm.disabled_statements());
}

TEST(NativeEngine, ResultAnswersTheSameQueriesAsMachine) {
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  const DataFlowGraph g = benchmarks::differential_equation_solver();
  const std::int64_t n = 11;
  const LoopProgram p = original_program(g, n);
  const native::NativeOutcome out = native::run_native(p);
  ASSERT_TRUE(out.ok()) << out.diagnostic;
  const Machine vm = run_program(p);

  for (const std::string& array : array_names(g)) {
    EXPECT_EQ(out.result.total_writes(array), vm.total_writes(array)) << array;
    // Cell-by-cell past both ends: unwritten cells must fall back to the
    // VM's boundary values, written cells to identical hashes and counts.
    for (std::int64_t i = -3; i <= n + 3; ++i) {
      EXPECT_EQ(out.result.read(array, i), vm.read(array, i)) << array << '[' << i << ']';
      EXPECT_EQ(out.result.write_count(array, i), vm.write_count(array, i))
          << array << '[' << i << ']';
    }
  }
  // An array the program never mentions reads as all-boundary, zero writes.
  EXPECT_EQ(out.result.total_writes("no_such_array"), 0);
  EXPECT_EQ(out.result.write_count("no_such_array", 1), 0);
}

TEST(NativeEngine, SecondRunOfSameProgramHitsTheCache) {
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  const LoopProgram p = csr_program(benchmarks::allpole_filter(), 19);
  ASSERT_TRUE(native::run_native(p).ok());
  const native::NativeOutcome again = native::run_native(p);
  ASSERT_TRUE(again.ok()) << again.diagnostic;
  EXPECT_TRUE(again.cache_hit);
}

TEST(NativeDriver, NativeIsAFirstClassGridAxis) {
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  const auto [results, stats] = driver::run_sweep(
      driver::SweepConfig()
          .benchmarks({"IIR Filter"})
          .trip_counts({23})
          .exec_engines({driver::ExecEngine::kVm, driver::ExecEngine::kNative})
          .transforms({driver::Transform::kOriginal, driver::Transform::kRetimedCsr})
          .factors({})
          .threads(2));
  ASSERT_EQ(results.size(), 4u);  // 2 transforms x 2 execution engines
  for (const auto& r : results) {
    EXPECT_TRUE(r.feasible) << r.error;
    EXPECT_FALSE(r.skipped) << r.skip_reason;
    EXPECT_TRUE(r.verified) << to_string(r.cell.exec) << ' '
                            << to_string(r.cell.transform);
    EXPECT_TRUE(r.discipline_ok);
    EXPECT_GT(r.exec_statements, 0);
  }
}

TEST(NativeDriver, MissingCompilerFallsBackToVmWithDiagnostic) {
  // The default retry policy degrades a native cell whose toolchain is
  // broken to VM verification, preserving the toolchain failure as the
  // cell's diagnostic — the sweep keeps full differential coverage.
  ScopedEnv env("CSR_CC", "/nonexistent/csr-test-cc");
  driver::SweepCell cell;
  cell.benchmark = "IIR Filter";
  cell.exec = driver::ExecEngine::kNative;
  cell.transform = driver::Transform::kRetimedCsr;
  cell.n = 23;
  driver::SweepOptions options;
  options.retry.max_attempts = 1;  // a missing binary never comes back
  const driver::SweepResult r = driver::evaluate_cell(cell, options);
  EXPECT_TRUE(r.feasible) << r.error;  // the cell itself is fine
  EXPECT_FALSE(r.skipped);
  EXPECT_TRUE(r.engine_fallback);
  EXPECT_NE(r.fallback_reason.find("/nonexistent/csr-test-cc"), std::string::npos)
      << r.fallback_reason;
  EXPECT_TRUE(r.verified);  // verified — on the VM, not natively
  EXPECT_TRUE(r.discipline_ok);
  EXPECT_GT(r.code_size, 0);  // generation and accounting still happened
}

TEST(NativeDriver, MissingCompilerMarksCellsSkippedWhenFallbackDisabled) {
  // RetryPolicy::fallback_to_vm = false restores the pre-journal contract:
  // a missing host compiler is a property of the machine, not of the cell,
  // so the cell reports skipped (still feasible) with the diagnostic.
  ScopedEnv env("CSR_CC", "/nonexistent/csr-test-cc");
  driver::SweepCell cell;
  cell.benchmark = "IIR Filter";
  cell.exec = driver::ExecEngine::kNative;
  cell.transform = driver::Transform::kRetimedCsr;
  cell.n = 23;
  driver::SweepOptions options;
  options.retry.max_attempts = 1;
  options.retry.fallback_to_vm = false;
  const driver::SweepResult r = driver::evaluate_cell(cell, options);
  EXPECT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(r.skipped);
  EXPECT_FALSE(r.engine_fallback);
  EXPECT_NE(r.skip_reason.find("/nonexistent/csr-test-cc"), std::string::npos)
      << r.skip_reason;
  EXPECT_FALSE(r.verified);  // skipped cells never claim verification
  EXPECT_GT(r.code_size, 0);
}

}  // namespace
}  // namespace csr
