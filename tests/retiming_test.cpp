// Tests for retiming: function mechanics, legality and application under the
// paper's sign convention, prologue/epilogue census, W/D matrices, the
// difference-constraint solver and the minimum-period / minimum-depth
// searches.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "dfg/random.hpp"
#include "retiming/constraints.hpp"
#include "retiming/opt.hpp"
#include "retiming/retiming.hpp"
#include "retiming/wd.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(Retiming, DistinctValuesAndNormalization) {
  Retiming r(std::vector<int>{3, 1, 3, 2});
  EXPECT_EQ(r.max_value(), 3);
  EXPECT_EQ(r.min_value(), 1);
  EXPECT_EQ(r.distinct_values(), (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(r.is_normalized());
  const Retiming n = r.normalized();
  EXPECT_TRUE(n.is_normalized());
  EXPECT_EQ(n.values(), (std::vector<int>{2, 0, 2, 1}));
}

TEST(Retiming, Figure1PaperConvention) {
  // Figure 1: r(A)=1 moves the delay from B→A onto A→B:
  // d_r(A→B) = 0 + 1 − 0 = 1, d_r(B→A) = 2 + 0 − 1 = 1.
  const DataFlowGraph g = benchmarks::figure1_example();
  Retiming r(g.node_count());
  r.set(*g.find_node("A"), 1);
  ASSERT_TRUE(is_legal_retiming(g, r));
  const DataFlowGraph retimed = apply_retiming(g, r);
  EXPECT_EQ(retimed.edge(0).delay, 1);
  EXPECT_EQ(retimed.edge(1).delay, 1);
  EXPECT_EQ(cycle_period(retimed), 1);
}

TEST(Retiming, IllegalRetimingDetectedAndRejected) {
  const DataFlowGraph g = benchmarks::figure1_example();
  Retiming r(g.node_count());
  r.set(*g.find_node("B"), 1);  // would drive d(A→B) to −1
  EXPECT_FALSE(is_legal_retiming(g, r));
  EXPECT_THROW(apply_retiming(g, r), InvalidArgument);
}

TEST(Retiming, CycleDelaySumsPreserved) {
  const DataFlowGraph g = benchmarks::figure3_example();
  Retiming r(std::vector<int>{3, 2, 2, 1, 0});
  ASSERT_TRUE(is_legal_retiming(g, r));
  const DataFlowGraph retimed = apply_retiming(g, r);
  // Total delay around any cycle is invariant; figure 3 has cycles through
  // E→A. Compare total graph delay as a proxy plus spot-check the E→A cycle.
  for (const auto& cycle : enumerate_simple_cycles(g)) {
    int before = 0;
    int after = 0;
    for (const EdgeId e : cycle) {
      before += g.edge(e).delay;
      after += retimed.edge(e).delay;
    }
    EXPECT_EQ(before, after);
  }
}

TEST(Retiming, PipelineExpansionCensus) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r(std::vector<int>{3, 2, 2, 1, 0});
  const PipelineExpansion census = pipeline_expansion(g, r);
  EXPECT_EQ(census.depth, 3);
  EXPECT_EQ(census.prologue_statements, 3 + 2 + 2 + 1 + 0);
  EXPECT_EQ(census.epilogue_statements, 0 + 1 + 1 + 2 + 3);
  EXPECT_EQ(census.total(), 15);
}

TEST(Retiming, CensusNormalizesFirst) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 1);
  g.add_edge(b, a, 1);
  const Retiming r(std::vector<int>{-1, -2});
  const PipelineExpansion census = pipeline_expansion(g, r);
  EXPECT_EQ(census.depth, 1);
  EXPECT_EQ(census.total(), 2);
}

TEST(DifferenceConstraints, SolvesFeasibleSystem) {
  // x1 − x0 ≤ 2, x0 − x1 ≤ −1  →  1 ≤ x1 − x0 ≤ 2.
  const auto solution = solve_difference_constraints(2, {{0, 1, 2}, {1, 0, -1}});
  ASSERT_TRUE(solution.has_value());
  const std::int64_t diff = (*solution)[1] - (*solution)[0];
  EXPECT_GE(diff, 1);
  EXPECT_LE(diff, 2);
}

TEST(DifferenceConstraints, DetectsInfeasibleSystem) {
  // x1 − x0 ≤ −1 and x0 − x1 ≤ −1 cannot both hold.
  EXPECT_FALSE(solve_difference_constraints(2, {{0, 1, -1}, {1, 0, -1}}).has_value());
}

TEST(DifferenceConstraints, RejectsOutOfRangeVariables) {
  EXPECT_THROW(solve_difference_constraints(1, {{0, 3, 0}}), InvalidArgument);
}

TEST(WDMatrices, SimpleChain) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 2);
  const NodeId b = g.add_node("B", 3);
  const NodeId c = g.add_node("C", 1);
  g.add_edge(a, b, 0);
  g.add_edge(b, c, 1);
  const WDMatrices wd(g);
  EXPECT_EQ(wd.w(a, b), 0);
  EXPECT_EQ(wd.d(a, b), 5);  // t(A)+t(B)
  EXPECT_EQ(wd.w(a, c), 1);
  EXPECT_EQ(wd.d(a, c), 6);  // all three nodes
  EXPECT_EQ(wd.d(a, a), 2);  // empty path
  EXPECT_FALSE(wd.reachable(c, a));
}

TEST(WDMatrices, PicksMaxTimeAmongMinDelayPaths) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 1);
  const NodeId b = g.add_node("B", 5);
  const NodeId c = g.add_node("C", 1);
  const NodeId d = g.add_node("D", 1);
  g.add_edge(a, b, 0);
  g.add_edge(b, d, 0);  // A→B→D: delay 0, time 7
  g.add_edge(a, c, 0);
  g.add_edge(c, d, 0);  // A→C→D: delay 0, time 3
  const WDMatrices wd(g);
  EXPECT_EQ(wd.w(a, d), 0);
  EXPECT_EQ(wd.d(a, d), 7);
}

TEST(WDMatrices, ThrowsOnZeroDelayCycle) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_THROW(WDMatrices{g}, InvalidArgument);
}

TEST(WDMatrices, CandidatePeriodsSortedUnique) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const auto candidates = WDMatrices(g).candidate_periods();
  ASSERT_FALSE(candidates.empty());
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  EXPECT_EQ(std::adjacent_find(candidates.begin(), candidates.end()), candidates.end());
}

TEST(Opt, FeasibleRetimingAchievesPeriod) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const auto r = feasible_retiming(g, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(is_legal_retiming(g, *r));
  EXPECT_LE(cycle_period(apply_retiming(g, *r)), 1);
}

TEST(Opt, InfeasiblePeriodReturnsNullopt) {
  // Unit-time graphs can never beat period 1... but a graph with t=3 node
  // cannot go below 3.
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 3);
  g.add_edge(a, a, 1);
  EXPECT_FALSE(feasible_retiming(g, 2).has_value());
  EXPECT_TRUE(feasible_retiming(g, 3).has_value());
}

TEST(Opt, MinimumPeriodFigure3IsOne) {
  const OptimalRetiming opt = minimum_period_retiming(benchmarks::figure3_example());
  EXPECT_EQ(opt.period, 1);
  EXPECT_TRUE(opt.retiming.is_normalized());
  EXPECT_EQ(opt.retiming.max_value(), 3);  // the paper's pipeline depth
}

TEST(Opt, MinimumPeriodRespectsIterationBoundFloor) {
  // The achievable cycle period can never undercut ⌈iteration bound⌉.
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const auto bound = iteration_bound(g);
    ASSERT_TRUE(bound.has_value());
    const OptimalRetiming opt = minimum_period_retiming(g);
    EXPECT_GE(Rational(opt.period), *bound) << info.name;
    EXPECT_LE(opt.period, cycle_period(g)) << info.name;
  }
}

TEST(Opt, MinDepthRetimingMatchesFeasibility) {
  const DataFlowGraph g = benchmarks::allpole_filter();
  const auto shallow = min_depth_retiming(g, 3);
  ASSERT_TRUE(shallow.has_value());
  EXPECT_LE(cycle_period(apply_retiming(g, *shallow)), 3);
  // Any feasible retiming at the same period is at least as deep.
  const auto any = feasible_retiming(g, 3);
  ASSERT_TRUE(any.has_value());
  EXPECT_LE(shallow->max_value(), any->normalized().max_value());
}

TEST(Opt, MinDepthInfeasiblePeriodReturnsNullopt) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 4);
  g.add_edge(a, a, 1);
  EXPECT_FALSE(min_depth_retiming(g, 3).has_value());
}

TEST(Opt, DepthMinimalityOnChain) {
  // 6-node zero-delay chain with a 2-delay feedback: period 3 requires at
  // least one delay inside the chain, i.e. depth ≥ 1, and 1 suffices.
  DataFlowGraph g;
  std::vector<NodeId> chain;
  for (int k = 0; k < 6; ++k) chain.push_back(g.add_node("N" + std::to_string(k)));
  for (int k = 0; k + 1 < 6; ++k) g.add_edge(chain[k], chain[k + 1], 0);
  g.add_edge(chain[5], chain[0], 2);
  const auto r = min_depth_retiming(g, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->max_value(), 1);
}

TEST(Opt, RandomGraphsMinimumPeriodIsConsistent) {
  SplitMix64 rng(777);
  RandomDfgOptions options;
  options.max_nodes = 10;
  options.max_time = 3;
  for (int trial = 0; trial < 100; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const OptimalRetiming opt = minimum_period_retiming(g);
    EXPECT_TRUE(is_legal_retiming(g, opt.retiming)) << trial;
    EXPECT_EQ(cycle_period(apply_retiming(g, opt.retiming)) <= opt.period, true) << trial;
    // One candidate below the optimum must be infeasible (when one exists).
    const WDMatrices wd(g);
    const auto candidates = wd.candidate_periods();
    const auto it = std::lower_bound(candidates.begin(), candidates.end(), opt.period);
    if (it != candidates.begin()) {
      EXPECT_FALSE(feasible_retiming(g, wd, *(it - 1)).has_value()) << trial;
    }
  }
}

}  // namespace
}  // namespace csr
