// Tests for loop-program serialization: round-trips of every generated
// program shape, format errors, and the golden files under data/golden
// (regression pins on the exact code the generators emit).

#include <gtest/gtest.h>

#include <fstream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/unfolded.hpp"
#include "loopir/serialize.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"

#ifndef CSR_DATA_DIR
#define CSR_DATA_DIR "data"
#endif

namespace csr {
namespace {

TEST(Serialize, RoundTripsEveryGeneratedShape) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const std::int64_t n = 19;
    const std::vector<LoopProgram> programs = {
        original_program(g, n),
        retimed_program(g, r, n),
        retimed_csr_program(g, r, n),
        unfolded_program(g, 3, n),
        unfolded_csr_program(g, 3, n),
        retimed_unfolded_csr_program(g, r, 3, n),
    };
    for (const LoopProgram& p : programs) {
      const LoopProgram back = parse_program_text(to_program_text(p));
      EXPECT_EQ(back, p) << info.name << ' ' << p.name;
    }
  }
}

TEST(Serialize, ParsesHandWrittenProgram) {
  const LoopProgram p = parse_program_text(
      "# comment\n"
      "program demo loop\n"
      "n 7\n"
      "segment 0 0 1\n"
      "setup p1 2\n"
      "segment 1 7 2\n"
      "stmt A 3 + guard p1 src E -1 src B -2\n"
      "dec p1 1\n");
  EXPECT_EQ(p.name, "demo loop");
  EXPECT_EQ(p.n, 7);
  ASSERT_EQ(p.segments.size(), 2u);
  const Instruction& stmt = p.segments[1].instructions[0];
  EXPECT_EQ(stmt.guard, "p1");
  EXPECT_EQ(stmt.stmt.sources.size(), 2u);
  EXPECT_EQ(stmt.stmt.sources[1].offset, -2);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(parse_program_text("n 5\n"), ParseError);  // no header
  EXPECT_THROW(parse_program_text("program x\n"), ParseError);  // no n
  EXPECT_THROW(parse_program_text("program x\nn 5\nstmt A 0 +\n"), ParseError);
  EXPECT_THROW(parse_program_text("program x\nn 5\nsegment 1 5 0\n"), ParseError);
  EXPECT_THROW(parse_program_text("program x\nn 5\nsegment 1 5 1\nfrob\n"), ParseError);
  EXPECT_THROW(parse_program_text("program x\nn 5\nsegment 1 5 1\nstmt A y +\n"),
               ParseError);
  EXPECT_THROW(
      parse_program_text("program x\nn 5\nsegment 1 5 1\nstmt A 0 + guard\n"),
      ParseError);
}

struct GoldenCase {
  const char* file;
  LoopProgram (*generate)();
};

LoopProgram golden_figure3() {
  const DataFlowGraph g = benchmarks::figure3_example();
  return retimed_csr_program(g, minimum_period_retiming(g).retiming, 12);
}

LoopProgram golden_figure5() {
  return unfolded_csr_program(benchmarks::figure4_example(), 3, 11);
}

LoopProgram golden_figure7() {
  const DataFlowGraph g = benchmarks::figure4_example();
  Retiming r(g.node_count());
  r.set(*g.find_node("A"), 1);
  r.set(*g.find_node("B"), 1);
  return retimed_unfolded_csr_program(g, r, 3, 9);
}

class GoldenFileTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenFileTest, GeneratedProgramMatchesGolden) {
  const std::string path = std::string(CSR_DATA_DIR) + "/golden/" + GetParam().file;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  const LoopProgram golden = read_program_text(in);
  EXPECT_EQ(GetParam().generate(), golden) << path;
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, GoldenFileTest,
    ::testing::Values(GoldenCase{"figure3_retimed_csr.loop", golden_figure3},
                      GoldenCase{"figure5_unfolded_csr.loop", golden_figure5},
                      GoldenCase{"figure7_retimed_unfolded_csr.loop", golden_figure7}),
    [](const auto& param_info) {
      std::string name = param_info.param.file;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace csr
