// Tests for static schedules: ASAP/ALAP, validation, resource models and
// resource-constrained list scheduling.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/random.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/resources.hpp"
#include "schedule/schedule.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(Schedule, AsapLengthEqualsCyclePeriod) {
  for (const auto& info : benchmarks::all_graphs()) {
    const DataFlowGraph g = info.factory();
    const StaticSchedule s = asap_schedule(g);
    EXPECT_TRUE(validate_schedule(g, s).empty()) << info.name;
    EXPECT_EQ(s.length(g), cycle_period(g)) << info.name;
  }
}

TEST(Schedule, AsapFigure2) {
  // Figure 2(a): the original figure-3 loop scheduled ASAP has length 4
  // (A; B,C; D; E — B and C in the same step).
  const DataFlowGraph g = benchmarks::figure3_example();
  const StaticSchedule s = asap_schedule(g);
  EXPECT_EQ(s.length(g), 4);
  EXPECT_EQ(s.start(*g.find_node("A")), 0);
  EXPECT_EQ(s.start(*g.find_node("B")), 1);
  EXPECT_EQ(s.start(*g.find_node("C")), 1);
  EXPECT_EQ(s.start(*g.find_node("D")), 2);
  EXPECT_EQ(s.start(*g.find_node("E")), 3);
}

TEST(Schedule, AlapMeetsDeadlineAndIsValid) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const StaticSchedule s = alap_schedule(g, 6);
  EXPECT_TRUE(validate_schedule(g, s).empty());
  EXPECT_LE(s.length(g), 6);
  // E is a sink: ALAP pushes it to the last step.
  EXPECT_EQ(s.start(*g.find_node("E")), 5);
}

TEST(Schedule, AlapRejectsTooShortDeadline) {
  const DataFlowGraph g = benchmarks::figure3_example();
  EXPECT_THROW(alap_schedule(g, cycle_period(g) - 1), InvalidArgument);
}

TEST(Schedule, ValidateCatchesPrecedenceViolation) {
  const DataFlowGraph g = benchmarks::figure1_example();
  StaticSchedule s(g.node_count());
  s.set_start(*g.find_node("A"), 0);
  s.set_start(*g.find_node("B"), 0);  // B must start after A finishes
  EXPECT_FALSE(validate_schedule(g, s).empty());
}

TEST(Schedule, ValidateCatchesNegativeStart) {
  const DataFlowGraph g = benchmarks::figure1_example();
  StaticSchedule s(g.node_count());
  s.set_start(0, -1);
  s.set_start(1, 2);
  EXPECT_FALSE(validate_schedule(g, s).empty());
}

TEST(Schedule, IterationPeriodDividesByFactor) {
  const DataFlowGraph g = benchmarks::figure1_example();
  const StaticSchedule s = asap_schedule(g);
  EXPECT_EQ(iteration_period(g, s, 2), Rational(1));
  EXPECT_EQ(iteration_period(g, s, 4), Rational(1, 2));
}

TEST(Schedule, FormatListsEveryStep) {
  const DataFlowGraph g = benchmarks::figure1_example();
  const std::string table = format_schedule(g, asap_schedule(g));
  EXPECT_NE(table.find("step 0: A"), std::string::npos);
  EXPECT_NE(table.find("step 1: B"), std::string::npos);
}

TEST(Resources, UniformModelClassifiesEverythingTogether) {
  const ResourceModel model = ResourceModel::uniform(2);
  const DataFlowGraph g = benchmarks::iir_filter();
  EXPECT_EQ(model.node_class(g, 0), "fu");
  EXPECT_EQ(model.units("fu"), 2);
  EXPECT_THROW((void)model.units("mul"), InvalidArgument);
}

TEST(Resources, AddMulClassifierUsesNamePrefix) {
  const ResourceModel model = ResourceModel::adders_and_multipliers(1, 2);
  const DataFlowGraph g = benchmarks::iir_filter();
  EXPECT_EQ(model.node_class(g, *g.find_node("Mf1")), "mul");
  EXPECT_EQ(model.node_class(g, *g.find_node("Af2")), "add");
  EXPECT_EQ(model.units("mul"), 2);
}

TEST(Resources, RejectsNonPositiveUnits) {
  EXPECT_THROW(ResourceModel::uniform(0), InvalidArgument);
  EXPECT_THROW(ResourceModel::adders_and_multipliers(0, 1), InvalidArgument);
}

TEST(ListScheduler, UnlimitedResourcesMatchAsap) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const StaticSchedule s =
        list_schedule(g, ResourceModel::uniform(static_cast<int>(g.node_count())));
    EXPECT_EQ(s.length(g), cycle_period(g)) << info.name;
  }
}

TEST(ListScheduler, SingleUnitSerializesEverything) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const ResourceModel model = ResourceModel::uniform(1);
  const StaticSchedule s = list_schedule(g, model);
  EXPECT_TRUE(validate_schedule(g, s).empty());
  EXPECT_TRUE(validate_resources(g, s, model).empty());
  EXPECT_EQ(s.length(g), static_cast<int>(g.node_count()));
}

TEST(ListScheduler, RespectsPerClassCapacity) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
  const StaticSchedule s = list_schedule(g, model);
  EXPECT_TRUE(validate_schedule(g, s).empty());
  EXPECT_TRUE(validate_resources(g, s, model).empty());
  EXPECT_GE(s.length(g), cycle_period(g));
}

TEST(ListScheduler, HandlesNonUnitTimes) {
  const DataFlowGraph g = benchmarks::chao_sha_example();
  const ResourceModel model = ResourceModel::uniform(2);
  const StaticSchedule s = list_schedule(g, model);
  EXPECT_TRUE(validate_schedule(g, s).empty());
  EXPECT_TRUE(validate_resources(g, s, model).empty());
}

TEST(ListScheduler, ValidateResourcesCatchesOverCapacity) {
  const DataFlowGraph g = benchmarks::figure3_example();
  StaticSchedule s(g.node_count());  // everything at step 0 — invalid & over
  const ResourceModel model = ResourceModel::uniform(1);
  EXPECT_FALSE(validate_resources(g, s, model).empty());
}

TEST(ListScheduler, RandomGraphsAlwaysValid) {
  SplitMix64 rng(64);
  RandomDfgOptions options;
  options.max_time = 3;
  for (int trial = 0; trial < 50; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    for (const int k : {1, 2, 3}) {
      const ResourceModel model = ResourceModel::uniform(k);
      const StaticSchedule s = list_schedule(g, model);
      EXPECT_TRUE(validate_schedule(g, s).empty()) << trial;
      EXPECT_TRUE(validate_resources(g, s, model).empty()) << trial;
    }
  }
}

}  // namespace
}  // namespace csr
