// Golden-file snapshots of the C emitter: the emitted source for each paper
// benchmark (original and retimed-CSR forms, numeric semantics) plus one
// exact-semantics kernel — which pins the native engine's csr_* readback
// ABI — is compared byte-for-byte against tests/golden/*.c. Any intentional
// emitter change shows up as a readable diff in the failure message.
//
// To update the snapshots after an intentional change, run:
//
//     CSR_UPDATE_GOLDEN=1 build/tests/golden_c_emitter_test
//
// then review `git diff tests/golden/` before committing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "retiming/opt.hpp"

namespace csr {
namespace {

// Trip count of every snapshot; small enough to keep the files readable.
constexpr std::int64_t kGoldenN = 12;

struct GoldenCase {
  const char* file;  ///< file name under tests/golden/
  const char* slug;  ///< registry short name of the benchmark
  DataFlowGraph (*factory)();
  bool csr;    ///< retimed-CSR form instead of the original loop
  bool exact;  ///< exact (native-engine) semantics instead of numeric
};

constexpr GoldenCase kCases[] = {
    {"iir_original.c", "iir", benchmarks::iir_filter, false, false},
    {"iir_retimed_csr.c", "iir", benchmarks::iir_filter, true, false},
    {"diffeq_original.c", "diffeq", benchmarks::differential_equation_solver, false,
     false},
    {"diffeq_retimed_csr.c", "diffeq", benchmarks::differential_equation_solver, true,
     false},
    {"allpole_original.c", "allpole", benchmarks::allpole_filter, false, false},
    {"allpole_retimed_csr.c", "allpole", benchmarks::allpole_filter, true, false},
    {"elliptic_original.c", "elliptic", benchmarks::elliptic_filter, false, false},
    {"elliptic_retimed_csr.c", "elliptic", benchmarks::elliptic_filter, true, false},
    {"lattice_original.c", "lattice", benchmarks::lattice_filter, false, false},
    {"lattice_retimed_csr.c", "lattice", benchmarks::lattice_filter, true, false},
    {"volterra_original.c", "volterra", benchmarks::volterra_filter, false, false},
    {"volterra_retimed_csr.c", "volterra", benchmarks::volterra_filter, true, false},
    // The exact-mode snapshot pins the native engine's ABI: csr_mix hashing,
    // buffer layout macros and the csr_* descriptor table (docs/ENGINES.md).
    {"iir_retimed_csr_exact.c", "iir", benchmarks::iir_filter, true, true},
};

std::string render(const GoldenCase& c) {
  const DataFlowGraph g = c.factory();
  LoopProgram program;
  if (c.csr) {
    program = retimed_csr_program(g, minimum_period_retiming(g).retiming, kGoldenN);
  } else {
    program = original_program(g, kGoldenN);
  }
  CEmitterOptions options;
  options.function_name = c.exact ? "csr_kernel" : std::string(c.slug) + "_kernel";
  if (c.exact) options.semantics = CEmitterOptions::Semantics::kExact;
  return to_c_source(program, options);
}

std::filesystem::path golden_path(const GoldenCase& c) {
  return std::filesystem::path(CSR_GOLDEN_DIR) / c.file;
}

bool update_mode() {
  const char* flag = std::getenv("CSR_UPDATE_GOLDEN");
  return flag != nullptr && *flag != '\0' && std::string(flag) != "0";
}

std::string golden_case_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string name = info.param.file;
  name.resize(name.size() - 2);  // drop ".c"
  return name;
}

class GoldenCEmitterTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenCEmitterTest, MatchesSnapshot) {
  const GoldenCase& c = GetParam();
  const std::string actual = render(c);
  const std::filesystem::path path = golden_path(c);

  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << path << " missing — regenerate with CSR_UPDATE_GOLDEN=1 "
                  << "build/tests/golden_c_emitter_test";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "emitted C drifted from " << path << "\nIf the change is intentional: "
      << "CSR_UPDATE_GOLDEN=1 build/tests/golden_c_emitter_test, then review "
      << "`git diff tests/golden/`.";
}

INSTANTIATE_TEST_SUITE_P(Snapshots, GoldenCEmitterTest, ::testing::ValuesIn(kCases),
                         golden_case_name);

// The snapshots themselves must be deterministic: emitting twice from
// scratch yields byte-identical source (no iteration-order or address
// leakage in the emitter).
TEST(GoldenCEmitter, EmissionIsDeterministic) {
  for (const GoldenCase& c : kCases) {
    EXPECT_EQ(render(c), render(c)) << c.file;
  }
}

}  // namespace
}  // namespace csr
