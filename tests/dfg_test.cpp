// Unit tests for the data-flow graph core: construction, validation, graph
// algorithms, DOT export and the text exchange format.

#include <gtest/gtest.h>

#include <algorithm>

#include "dfg/algorithms.hpp"
#include "dfg/dot.hpp"
#include "dfg/graph.hpp"
#include "dfg/io.hpp"
#include "dfg/random.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

DataFlowGraph two_node_cycle() {
  DataFlowGraph g("pair");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 2);
  return g;
}

TEST(Graph, AddNodesAndEdges) {
  const DataFlowGraph g = two_node_cycle();
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.node(0).name, "A");
  EXPECT_EQ(g.edge(1).delay, 2);
  EXPECT_EQ(g.out_edges(0).size(), 1u);
  EXPECT_EQ(g.in_edges(0).size(), 1u);
}

TEST(Graph, FindNode) {
  const DataFlowGraph g = two_node_cycle();
  EXPECT_EQ(g.find_node("B"), NodeId{1});
  EXPECT_FALSE(g.find_node("Z").has_value());
}

TEST(Graph, RejectsDuplicateNames) {
  DataFlowGraph g;
  g.add_node("A");
  EXPECT_THROW(g.add_node("A"), InvalidArgument);
}

TEST(Graph, RejectsEmptyNameAndBadTime) {
  DataFlowGraph g;
  EXPECT_THROW(g.add_node(""), InvalidArgument);
  EXPECT_THROW(g.add_node("A", 0), InvalidArgument);
}

TEST(Graph, RejectsNegativeDelayAndBadEndpoints) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  EXPECT_THROW(g.add_edge(a, b, -1), InvalidArgument);
  EXPECT_THROW(g.add_edge(a, 5, 0), InvalidArgument);
}

TEST(Graph, RejectsZeroDelaySelfLoop) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  EXPECT_THROW(g.add_edge(a, a, 0), InvalidArgument);
  EXPECT_NO_THROW(g.add_edge(a, a, 1));
}

TEST(Graph, TotalsAndUnitTime) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 2);
  const NodeId b = g.add_node("B", 3);
  g.add_edge(a, b, 4);
  EXPECT_EQ(g.total_time(), 5);
  EXPECT_EQ(g.total_delay(), 4);
  EXPECT_FALSE(g.unit_time());
}

TEST(Graph, ValidateFlagsZeroDelayCycle) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_FALSE(g.is_legal());
  const auto problems = g.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("zero-delay cycle"), std::string::npos);
}

TEST(Graph, SetDelayAndTime) {
  DataFlowGraph g = two_node_cycle();
  g.set_delay(0, 5);
  EXPECT_EQ(g.edge(0).delay, 5);
  g.set_time(0, 7);
  EXPECT_EQ(g.node(0).time, 7);
  EXPECT_THROW(g.set_delay(0, -1), InvalidArgument);
}

TEST(Algorithms, TopologicalOrderRespectsZeroDelayEdges) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  g.add_edge(a, b, 0);
  g.add_edge(b, c, 0);
  g.add_edge(c, a, 1);  // delayed back edge does not constrain the order
  const auto order = zero_delay_topological_order(g);
  ASSERT_TRUE(order.has_value());
  const auto pos = [&](NodeId v) {
    return std::find(order->begin(), order->end(), v) - order->begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(c));
}

TEST(Algorithms, CyclePeriodIsLongestZeroDelayPath) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 2);
  const NodeId b = g.add_node("B", 3);
  const NodeId c = g.add_node("C", 1);
  g.add_edge(a, b, 0);
  g.add_edge(b, c, 0);
  g.add_edge(c, a, 1);
  EXPECT_EQ(cycle_period(g), 6);
}

TEST(Algorithms, CyclePeriodOfSingleNode) {
  DataFlowGraph g;
  g.add_node("A", 4);
  EXPECT_EQ(cycle_period(g), 4);
}

TEST(Algorithms, CyclePeriodEmptyGraphIsZero) {
  EXPECT_EQ(cycle_period(DataFlowGraph{}), 0);
}

TEST(Algorithms, CyclePeriodThrowsOnZeroDelayCycle) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_THROW((void)cycle_period(g), InvalidArgument);
}

TEST(Algorithms, ZeroDelayPathLengths) {
  DataFlowGraph g = two_node_cycle();
  const auto finish = zero_delay_path_lengths(g);
  EXPECT_EQ(finish[0], 1);
  EXPECT_EQ(finish[1], 2);
}

TEST(Algorithms, StronglyConnectedComponents) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 1);
  g.add_edge(b, c, 0);
  const auto sccs = strongly_connected_components(g);
  ASSERT_EQ(sccs.size(), 2u);
  const auto big = std::find_if(sccs.begin(), sccs.end(),
                                [](const auto& comp) { return comp.size() == 2; });
  ASSERT_NE(big, sccs.end());
}

TEST(Algorithms, HasCycleDetectsSelfLoop) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  EXPECT_FALSE(has_cycle(g));
  g.add_edge(a, a, 1);
  EXPECT_TRUE(has_cycle(g));
}

TEST(Algorithms, EnumerateSimpleCycles) {
  DataFlowGraph g = two_node_cycle();
  const auto cycles = enumerate_simple_cycles(g);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 2u);
}

TEST(Algorithms, EnumerateCountsMultiEdgesSeparately) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  g.add_edge(a, b, 1);  // parallel edge
  g.add_edge(b, a, 1);
  EXPECT_EQ(enumerate_simple_cycles(g).size(), 2u);
}

TEST(Algorithms, EnumerateRespectsCap) {
  DataFlowGraph g;
  for (int k = 0; k < 6; ++k) g.add_node("N" + std::to_string(k));
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      if (u != v) g.add_edge(u, v, 1);
    }
  }
  EXPECT_EQ(enumerate_simple_cycles(g, 10).size(), 10u);
}

TEST(Dot, ContainsNodesAndDelays) {
  const std::string dot = to_dot(two_node_cycle());
  EXPECT_NE(dot.find("label=\"A\""), std::string::npos);
  EXPECT_NE(dot.find("2D"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Dot, ShowsNonUnitTimes) {
  DataFlowGraph g;
  g.add_node("A", 3);
  EXPECT_NE(to_dot(g).find("t=3"), std::string::npos);
}

TEST(TextIo, RoundTrip) {
  const DataFlowGraph g = two_node_cycle();
  const DataFlowGraph parsed = parse_text(to_text(g));
  EXPECT_EQ(parsed.name(), g.name());
  ASSERT_EQ(parsed.node_count(), g.node_count());
  ASSERT_EQ(parsed.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(parsed.edge(e).from, g.edge(e).from);
    EXPECT_EQ(parsed.edge(e).to, g.edge(e).to);
    EXPECT_EQ(parsed.edge(e).delay, g.edge(e).delay);
  }
}

TEST(TextIo, ParsesCommentsAndBlanks) {
  const DataFlowGraph g = parse_text(
      "# header comment\n"
      "dfg demo\n"
      "\n"
      "node A 1\n"
      "node B 2\n"
      "edge A B 3\n");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node(1).time, 2);
  EXPECT_EQ(g.edge(0).delay, 3);
}

TEST(TextIo, RejectsUnknownNode) {
  EXPECT_THROW(parse_text("dfg x\nnode A 1\nedge A Z 0\n"), ParseError);
}

TEST(TextIo, RejectsMalformedDirectives) {
  EXPECT_THROW(parse_text("dfg x\nnode A\n"), ParseError);
  EXPECT_THROW(parse_text("dfg x\nfrob A 1\n"), ParseError);
  EXPECT_THROW(parse_text("node A 1\n"), ParseError);  // missing header
  EXPECT_THROW(parse_text("dfg x\ndfg y\n"), ParseError);
  EXPECT_THROW(parse_text("dfg x\nnode A one\n"), ParseError);
}

TEST(RandomDfg, AlwaysLegal) {
  SplitMix64 rng(123);
  for (int k = 0; k < 50; ++k) {
    const DataFlowGraph g = random_dfg(rng);
    EXPECT_TRUE(g.is_legal());
    EXPECT_GE(g.node_count(), 3u);
    EXPECT_LE(g.node_count(), 12u);
  }
}

TEST(RandomDfg, EnsureCyclicProducesCycle) {
  SplitMix64 rng(5);
  RandomDfgOptions options;
  options.ensure_cyclic = true;
  for (int k = 0; k < 20; ++k) {
    EXPECT_TRUE(has_cycle(random_dfg(rng, options)));
  }
}

TEST(RandomDfg, HonoursNodeBounds) {
  SplitMix64 rng(9);
  RandomDfgOptions options;
  options.min_nodes = 5;
  options.max_nodes = 5;
  const DataFlowGraph g = random_dfg(rng, options);
  EXPECT_EQ(g.node_count(), 5u);
}

}  // namespace
}  // namespace csr
