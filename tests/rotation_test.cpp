// Tests for rotation scheduling — the software-pipelining engine. Rotation
// must keep schedules valid and resource-feasible at every step, accumulate
// a legal retiming, and converge to (near-)rate-optimal iteration periods on
// the unit-time benchmarks.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "dfg/random.hpp"
#include "retiming/opt.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/rotation.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(Rotation, RejectsNonUnitTimeGraphs) {
  EXPECT_THROW(
      rotation_schedule(benchmarks::chao_sha_example(), ResourceModel::uniform(2)),
      InvalidArgument);
}

TEST(Rotation, ResultIsValidAndLegal) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const ResourceModel model = ResourceModel::uniform(2);
  const RotationResult result = rotation_schedule(g, model);
  EXPECT_TRUE(is_legal_retiming(g, result.retiming));
  EXPECT_TRUE(validate_schedule(result.retimed_graph, result.schedule).empty());
  EXPECT_TRUE(validate_resources(result.retimed_graph, result.schedule, model).empty());
  EXPECT_EQ(result.schedule.length(result.retimed_graph), result.period);
}

TEST(Rotation, NeverWorseThanInitialListSchedule) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
    const int initial = list_schedule(g, model).length(g);
    const RotationResult result = rotation_schedule(g, model);
    EXPECT_LE(result.period, initial) << info.name;
  }
}

TEST(Rotation, StrictlyImprovesBenchmarksWithAmpleResources) {
  // Rotation is a local heuristic (the exact optimum comes from the OPT
  // retiming in src/retiming): with ample resources it must strictly beat
  // the unpipelined cycle period on every benchmark and never beat the
  // provable optimum.
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    const RotationResult result =
        rotation_schedule(g, ResourceModel::uniform(static_cast<int>(g.node_count())));
    EXPECT_LT(result.period, cycle_period(g)) << info.name;
    EXPECT_GE(result.period, opt.period) << info.name;
  }
}

TEST(Rotation, PipelinesFigure1ToOneStep) {
  const RotationResult result =
      rotation_schedule(benchmarks::figure1_example(), ResourceModel::uniform(2));
  EXPECT_EQ(result.period, 1);
  EXPECT_EQ(result.retiming.max_value(), 1);
}

TEST(Rotation, RespectsResourceFloor) {
  // With a single functional unit, the period can never drop below |V|.
  const DataFlowGraph g = benchmarks::iir_filter();
  const RotationResult result = rotation_schedule(g, ResourceModel::uniform(1));
  EXPECT_GE(result.period, static_cast<int>(g.node_count()));
}

TEST(Rotation, PeriodNeverBelowIterationBound) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const auto bound = iteration_bound(g);
    ASSERT_TRUE(bound.has_value());
    const RotationResult result =
        rotation_schedule(g, ResourceModel::adders_and_multipliers(2, 2));
    EXPECT_GE(Rational(result.period), *bound) << info.name;
  }
}

TEST(Rotation, ZeroRotationsReturnsListSchedule) {
  const DataFlowGraph g = benchmarks::iir_filter();
  const ResourceModel model = ResourceModel::uniform(2);
  const RotationResult result = rotation_schedule(g, model, 0);
  EXPECT_EQ(result.rotations, 0);
  EXPECT_EQ(result.period, list_schedule(g, model).length(g));
  EXPECT_EQ(result.retiming.max_value(), 0);
}

TEST(Rotation, RandomUnitTimeGraphsStayConsistent) {
  SplitMix64 rng(4242);
  RandomDfgOptions options;
  options.max_nodes = 9;
  options.max_time = 1;
  for (int trial = 0; trial < 40; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const ResourceModel model = ResourceModel::uniform(2);
    const RotationResult result = rotation_schedule(g, model, 30);
    EXPECT_TRUE(is_legal_retiming(g, result.retiming)) << trial;
    EXPECT_TRUE(validate_schedule(result.retimed_graph, result.schedule).empty())
        << trial;
    EXPECT_TRUE(
        validate_resources(result.retimed_graph, result.schedule, model).empty())
        << trial;
  }
}

}  // namespace
}  // namespace csr
