// Tests for the C emitter: buffer sizing/offsets, guard lowering, loop
// structure, identifier sanitization — and an end-to-end check that the
// emitted C for a CSR loop actually compiles and computes the same thing
// as the original loop (both emitted, both compiled, buffers compared).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "benchmarks/benchmarks.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(CEmitter, EmitsBuffersWithOffsets) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const std::string source = to_c_source(original_program(g, 10));
  // E is read at i−4, so its buffer must cover index −3 (i starts at 1).
  EXPECT_NE(source.find("#define E(idx) E_buf[(idx) - (-3)]"), std::string::npos);
  EXPECT_NE(source.find("static double E_buf["), std::string::npos);
  EXPECT_NE(source.find("for (i = 1; i <= 10; i += 1) {"), std::string::npos);
  EXPECT_NE(source.find("A(i) = E(i - 4)"), std::string::npos);
}

TEST(CEmitter, LowersGuardsToIfs) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::string source = to_c_source(retimed_csr_program(g, r, 10));
  EXPECT_NE(source.find("if (p1 <= 0 && p1 > -n) {"), std::string::npos);
  EXPECT_NE(source.find("p1 -= 1;"), std::string::npos);
  EXPECT_NE(source.find("int64_t p4"), std::string::npos);
  EXPECT_NE(source.find("p4 = 3;"), std::string::npos);
}

TEST(CEmitter, HonorsOptions) {
  const DataFlowGraph g = benchmarks::figure4_example();
  CEmitterOptions options;
  options.value_type = "float";
  options.function_name = "dsp_loop";
  const std::string source = to_c_source(original_program(g, 5), options);
  EXPECT_NE(source.find("static float A_buf"), std::string::npos);
  EXPECT_NE(source.find("void dsp_loop(void)"), std::string::npos);
}

TEST(CEmitter, SanitizesIdentifiers) {
  DataFlowGraph g("weird");
  const NodeId a = g.add_node("A.0");
  const NodeId b = g.add_node("B-1");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 1);
  const std::string source = to_c_source(original_program(g, 4));
  EXPECT_NE(source.find("A_0("), std::string::npos);
  EXPECT_NE(source.find("B_1("), std::string::npos);
  EXPECT_EQ(source.find("A.0"), std::string::npos);
}

TEST(CEmitter, CollidingSanitizedNamesStayDistinct) {
  // Regression: "a.b" and "a_b" both sanitize to "a_b"; the emitter used to
  // alias them to one C buffer, silently merging two arrays.
  DataFlowGraph g("collide");
  const NodeId a = g.add_node("a.b");
  const NodeId b = g.add_node("a_b");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 1);
  const std::string source = to_c_source(original_program(g, 4));
  // Both arrays get their own buffer; the later-assigned one is suffixed.
  EXPECT_NE(source.find("a_b_buf["), std::string::npos);
  EXPECT_NE(source.find("a_b_2_buf["), std::string::npos);
  EXPECT_NE(source.find("#define a_b(idx)"), std::string::npos);
  EXPECT_NE(source.find("#define a_b_2(idx)"), std::string::npos);
}

TEST(CEmitter, RegisterNamesCannotCaptureLoopVariables) {
  // A register named "i" must not shadow the loop induction variable.
  LoopProgram p;
  p.n = 3;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("i", 1));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 3;
  Statement s;
  s.array = "A";
  s.op_seed = op_seed_for("A");
  loop.instructions.push_back(Instruction::statement(s, "i"));
  loop.instructions.push_back(Instruction::decrement("i"));
  p.segments = {setup, loop};
  const std::string source = to_c_source(p);
  // The register is renamed away from the reserved loop-variable name.
  EXPECT_NE(source.find("int64_t i_2"), std::string::npos);
}

TEST(CEmitter, RejectsInvalidProgram) {
  LoopProgram p;
  LoopSegment seg;
  seg.begin = 1;
  seg.end = 1;
  Statement s;
  s.array = "A";
  seg.instructions.push_back(Instruction::statement(s, "p1"));
  p.segments = {seg};
  EXPECT_THROW(to_c_source(p), InvalidArgument);
}

TEST(CEmitter, EmittedCsrLoopCompilesAndMatchesOriginal) {
  // Real end-to-end: emit C for the original and the CSR-pipelined loop,
  // compile both into one binary that diffs the shared arrays, run it.
  const char* cc = std::getenv("CC");
  const std::string compiler = cc ? cc : "cc";
  if (std::system((compiler + " --version > /dev/null 2>&1").c_str()) != 0) {
    GTEST_SKIP() << "no C compiler available";
  }

  const DataFlowGraph g = benchmarks::iir_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = 17;

  CEmitterOptions a;
  a.function_name = "run_original";
  CEmitterOptions b;
  b.function_name = "run_csr";
  const std::string original = to_c_source(original_program(g, n), a);
  // Rename the CSR program's arrays at the IR level so the two functions
  // use disjoint buffers in one translation unit.
  LoopProgram csr_renamed = retimed_csr_program(g, r, n);
  for (LoopSegment& seg : csr_renamed.segments) {
    for (Instruction& instr : seg.instructions) {
      if (instr.kind != InstrKind::kStatement) continue;
      instr.stmt.array += "X";
      for (ArrayRef& src : instr.stmt.sources) src.array += "X";
    }
  }
  const std::string reduced = to_c_source(csr_renamed, b);

  std::ostringstream main_src;
  main_src << original << "\n" << reduced << R"(
#include <stdio.h>
#include <math.h>
int main(void) {
  run_original();
  run_csr();
)";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::string name = g.node(v).name;
    main_src << "  for (int k = 1; k <= " << n << "; ++k) if (fabs(" << name
             << "(k) - " << name << "X(k)) > 1e-9) { printf(\"diff " << name
             << "[%d]\\n\", k); return 1; }\n";
  }
  main_src << "  printf(\"match\\n\");\n  return 0;\n}\n";

  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/csr_emit_test.c";
  const std::string bin_path = dir + "/csr_emit_test";
  std::ofstream(c_path) << main_src.str();
  ASSERT_EQ(std::system((compiler + " -O1 -o " + bin_path + " " + c_path + " -lm"
                         " > /dev/null 2>&1").c_str()),
            0)
      << "generated C failed to compile";
  ASSERT_EQ(std::system((bin_path + " > /dev/null").c_str()), 0)
      << "compiled CSR loop diverged from the original";
}

}  // namespace
}  // namespace csr
