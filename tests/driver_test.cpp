// Tests for the parallel sweep driver: the thread pool's determinism and
// error contracts, grid enumeration order, per-cell evaluation, and the
// headline guarantee — serial and parallel sweeps export byte-identical
// CSV/JSON.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "benchmarks/benchmarks.hpp"
#include "codesize/model.hpp"
#include "driver/config.hpp"
#include "driver/export.hpp"
#include "driver/export_schema.hpp"
#include "driver/sweep.hpp"
#include "driver/thread_pool.hpp"

namespace csr::driver {
namespace {

std::vector<std::string> table_benchmark_names() {
  std::vector<std::string> names;
  for (const auto& info : benchmarks::table_benchmarks()) names.push_back(info.name);
  return names;
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 200;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, 4, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  const std::vector<int> doubled =
      parallel_map(items, 4, [](int x) { return 2 * x; });
  ASSERT_EQ(doubled.size(), items.size());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(doubled[static_cast<std::size_t>(i)], 2 * i);
}

TEST(ThreadPool, RethrowsFirstException) {
  EXPECT_THROW(parallel_for(50, 4,
                            [](std::size_t i) {
                              if (i == 17) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  EXPECT_GE(default_thread_count(), 1u);
  std::atomic<int> total{0};
  parallel_for(10, 0, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 10);
}

TEST(SweepGrid, EnumeratesInDocumentedOrder) {
  SweepGrid grid;
  grid.benchmarks = {"A", "B"};
  grid.transforms = {Transform::kOriginal, Transform::kRetimedCsr,
                     Transform::kRetimedUnfoldedCsr};
  grid.factors = {2, 3};
  const std::vector<SweepCell> cells = grid.cells();
  // Per benchmark: 2 factor-less transforms, then 2 factors × 1 factor-full.
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells[0].benchmark, "A");
  EXPECT_EQ(cells[0].transform, Transform::kOriginal);
  EXPECT_EQ(cells[1].transform, Transform::kRetimedCsr);
  EXPECT_EQ(cells[2].transform, Transform::kRetimedUnfoldedCsr);
  EXPECT_EQ(cells[2].factor, 2);
  EXPECT_EQ(cells[3].factor, 3);
  EXPECT_EQ(cells[4].benchmark, "B");
}

TEST(Sweep, EvaluatesOriginalCell) {
  SweepCell cell;
  cell.benchmark = "IIR Filter";
  cell.transform = Transform::kOriginal;
  cell.n = 21;
  const SweepResult res = evaluate_cell(cell, SweepOptions{});
  EXPECT_TRUE(res.feasible) << res.error;
  EXPECT_TRUE(res.verified);
  EXPECT_TRUE(res.discipline_ok);
  EXPECT_EQ(res.code_size, res.predicted_size);
  EXPECT_GT(res.code_size, 0);
}

TEST(Sweep, CsrCellsMatchTheSizeModel) {
  for (const Transform t : {Transform::kRetimedCsr, Transform::kRetimedUnfoldedCsr,
                            Transform::kUnfoldedRetimedCsr}) {
    SweepCell cell;
    cell.benchmark = "Differential Equation";
    cell.transform = t;
    cell.factor = 2;
    cell.n = 41;
    const SweepResult res = evaluate_cell(cell, SweepOptions{});
    ASSERT_TRUE(res.feasible) << to_string(t) << ": " << res.error;
    EXPECT_TRUE(res.verified) << to_string(t);
    EXPECT_EQ(res.code_size, res.predicted_size) << to_string(t);
    EXPECT_GT(res.registers, 0) << to_string(t);
  }
}

TEST(Sweep, UnknownBenchmarkIsInfeasibleNotFatal) {
  SweepCell cell;
  cell.benchmark = "No Such Filter";
  const SweepResult res = evaluate_cell(cell, SweepOptions{});
  EXPECT_FALSE(res.feasible);
  EXPECT_NE(res.error.find("No Such Filter"), std::string::npos);
}

TEST(Sweep, TripCountBelowDepthIsInfeasible) {
  SweepCell cell;
  cell.benchmark = "IIR Filter";
  cell.transform = Transform::kRetimedCsr;
  cell.n = 1;  // depth of the IIR retiming is ≥ 1
  const SweepResult res = evaluate_cell(cell, SweepOptions{});
  EXPECT_FALSE(res.feasible);
  EXPECT_FALSE(res.error.empty());
}

TEST(Sweep, SerialAndParallelExportsAreByteIdentical) {
  const SweepConfig base = SweepConfig().benchmarks(table_benchmark_names());
  const std::vector<SweepResult> a = run_sweep(SweepConfig(base).threads(1)).results;
  const std::vector<SweepResult> b = run_sweep(SweepConfig(base).threads(4)).results;
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(to_csv(a), to_csv(b));
  EXPECT_EQ(to_json(a), to_json(b));
  // Every feasible cell of the headline grid verifies against the original.
  for (const SweepResult& res : a) {
    if (res.feasible) {
      EXPECT_TRUE(res.verified)
          << res.cell.benchmark << ' ' << to_string(res.cell.transform) << " f="
          << res.cell.factor;
    }
  }
}

TEST(Export, CsvSkipsInfeasibleRowsAndKeepsHeader) {
  SweepResult bad;
  bad.cell.benchmark = "X";
  bad.feasible = false;
  const std::string csv = to_csv({bad});
  EXPECT_EQ(csv, csv_header());
  EXPECT_EQ(csv_header(),
            "benchmark,transform,factor,n,iteration_bound,period,depth,"
            "registers,size,verified,optimality_gap,measured_size,"
            "loop_dims,rows,cols\n");
  const std::string json = to_json({bad});
  EXPECT_NE(json.find("\"feasible\": false"), std::string::npos);
}

}  // namespace
}  // namespace csr::driver
