// Tests for storage-minimal retiming: feasibility, optimality against a
// brute-force search on small graphs, dominance over the depth-minimal
// solver's storage, and the period guarantee.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/io.hpp"
#include "dfg/random.hpp"
#include "retiming/min_storage.hpp"
#include "retiming/opt.hpp"

namespace csr {
namespace {

TEST(MinStorage, InfeasiblePeriodReturnsNullopt) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 4);
  g.add_edge(a, a, 1);
  EXPECT_FALSE(min_storage_retiming(g, 3).has_value());
}

TEST(MinStorage, TotalDelaysAfterMatchesDirectCount) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming zero(g.node_count());
  EXPECT_EQ(total_delays_after(g, zero), g.total_delay());
  const Retiming r = minimum_period_retiming(g).retiming;
  EXPECT_EQ(total_delays_after(g, r), apply_retiming(g, r).total_delay());
}

TEST(MinStorage, AchievesPeriodOnBenchmarks) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    const auto r = min_storage_retiming(g, opt.period);
    ASSERT_TRUE(r.has_value()) << info.name;
    EXPECT_TRUE(is_legal_retiming(g, *r)) << info.name;
    EXPECT_LE(cycle_period(apply_retiming(g, *r)), opt.period) << info.name;
  }
}

TEST(MinStorage, NeverWorseThanDepthMinimalSolution) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    const auto storage = min_storage_retiming(g, opt.period);
    ASSERT_TRUE(storage.has_value()) << info.name;
    EXPECT_LE(total_delays_after(g, *storage), total_delays_after(g, opt.retiming))
        << info.name;
  }
}

TEST(MinStorage, RelaxedPeriodNeverNeedsMoreStorage) {
  const DataFlowGraph g = benchmarks::elliptic_filter();
  const OptimalRetiming opt = minimum_period_retiming(g);
  const auto tight = min_storage_retiming(g, opt.period);
  const auto loose = min_storage_retiming(g, cycle_period(g));
  ASSERT_TRUE(tight && loose);
  EXPECT_LE(total_delays_after(g, *loose), total_delays_after(g, *tight));
  // With the period fully relaxed, the zero retiming is feasible, so the
  // optimum cannot exceed the original delay count.
  EXPECT_LE(total_delays_after(g, *loose), g.total_delay());
}

// Brute force: enumerate every retiming vector in a small box and compare
// the optimum — catches any sign or duality slip in the flow solver.
TEST(MinStorage, MatchesBruteForceOnSmallRandomGraphs) {
  SplitMix64 rng(60606);
  RandomDfgOptions options;
  options.min_nodes = 3;
  options.max_nodes = 5;
  options.max_delay = 2;
  for (int trial = 0; trial < 60; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const std::size_t n = g.node_count();
    const std::int64_t period = cycle_period(g);  // always feasible

    const auto solved = min_storage_retiming(g, period);
    ASSERT_TRUE(solved.has_value()) << trial;
    const std::int64_t got = total_delays_after(g, *solved);

    // Exhaustive search over r ∈ [0, 4]^n (normalization allows fixing the
    // minimum at 0; spreads beyond the box cannot help storage on graphs
    // with max delay 2 and ≤ 5 nodes).
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    std::vector<int> values(n, 0);
    const int kMax = 4;
    while (true) {
      const Retiming candidate{values};
      if (is_legal_retiming(g, candidate) &&
          cycle_period(apply_retiming(g, candidate)) <= period) {
        best = std::min(best, total_delays_after(g, candidate));
      }
      std::size_t k = 0;
      while (k < n && values[k] == kMax) {
        values[k] = 0;
        ++k;
      }
      if (k == n) break;
      ++values[k];
    }
    EXPECT_EQ(got, best) << trial << "\n" << to_text(g);
  }
}

TEST(MinStorage, StorageVsDepthTradeoffExists) {
  // On at least one benchmark the storage-optimal retiming differs from the
  // depth-optimal one — the two objectives genuinely diverge.
  bool diverged = false;
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    const auto storage = min_storage_retiming(g, opt.period);
    ASSERT_TRUE(storage.has_value());
    if (total_delays_after(g, *storage) < total_delays_after(g, opt.retiming)) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace csr
