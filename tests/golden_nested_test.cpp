// Golden-file snapshots of the nested (2-D) lowering: for each bundled
// 2-D benchmark the row-major lowered LoopIR — naive nest, MD-retimed
// pipeline and CSR form — is compared byte-for-byte against
// tests/golden/*.ir. The snapshots make the vector-retiming story readable:
// the retimed dump shows the single global prologue/epilogue spanning row
// boundaries, the CSR dump the conditional registers that replace it.
//
// To update the snapshots after an intentional change, run:
//
//     CSR_UPDATE_GOLDEN=1 build/tests/golden_nested_test
//
// then review `git diff tests/golden/` before committing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "codegen/nested.hpp"
#include "loopir/printer.hpp"
#include "mdfg/builders.hpp"
#include "retiming/md_retiming.hpp"

namespace csr {
namespace {

struct GoldenCase {
  const char* file;  ///< file name under tests/golden/
  const char* benchmark;
  std::int64_t rows;
  std::int64_t cols;
};

// Small shapes keep the dumps reviewable; cols = 24 covers every engine's
// min_cols so all three forms exist for each benchmark.
constexpr GoldenCase kCases[] = {
    {"conv3x3_nested_r3_c24.ir", "conv3x3", 3, 24},
    {"jacobi5_nested_r3_c24.ir", "jacobi5", 3, 24},
    {"iir2d_nested_r3_c24.ir", "iir2d", 3, 24},
    {"tline2d_nested_r3_c24.ir", "tline2d", 3, 24},
};

std::string render(const GoldenCase& c) {
  const MdDataFlowGraph g = mdfg::find_md_benchmark(c.benchmark)->factory();
  const MdOptimalRetiming opt = md_minimum_period_retiming(g);

  std::ostringstream out;
  out << "== original nest ==\n"
      << to_source(nested_original_program(g, c.rows, c.cols)) << '\n';
  out << "== md-retimed (period " << opt.period << ", min_cols " << opt.min_cols
      << ") ==\n"
      << to_source(nested_retimed_program(g, opt.retiming, c.rows, c.cols)) << '\n';
  out << "== md-retimed csr ==\n"
      << to_source(nested_retimed_csr_program(g, opt.retiming, c.rows, c.cols));
  return out.str();
}

std::filesystem::path golden_path(const GoldenCase& c) {
  return std::filesystem::path(CSR_GOLDEN_DIR) / c.file;
}

bool update_mode() {
  const char* flag = std::getenv("CSR_UPDATE_GOLDEN");
  return flag != nullptr && *flag != '\0' && std::string(flag) != "0";
}

std::string golden_case_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string name = info.param.file;
  name.resize(name.size() - 3);  // drop ".ir"
  return name;
}

class GoldenNestedTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenNestedTest, MatchesSnapshot) {
  const GoldenCase& c = GetParam();
  const std::string actual = render(c);
  const std::filesystem::path path = golden_path(c);

  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << path << " missing — regenerate with CSR_UPDATE_GOLDEN=1 "
                  << "build/tests/golden_nested_test";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "lowered IR drifted from " << path
      << "\nIf the change is intentional: CSR_UPDATE_GOLDEN=1 "
      << "build/tests/golden_nested_test, then review `git diff tests/golden/`.";
}

INSTANTIATE_TEST_SUITE_P(Snapshots, GoldenNestedTest, ::testing::ValuesIn(kCases),
                         golden_case_name);

TEST(GoldenNested, DumpsAreDeterministic) {
  for (const GoldenCase& c : kCases) {
    EXPECT_EQ(render(c), render(c)) << c.file;
  }
}

}  // namespace
}  // namespace csr
