// Tests for the storage model and the structured DFG builders.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codesize/storage.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/builders.hpp"
#include "dfg/iteration_bound.hpp"
#include "dfg/random.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(Storage, CountsDelaysAndBuffers) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const StorageReport report = storage_requirements(g);
  EXPECT_EQ(report.delay_registers, 4 + 2);          // E→A(4), B→C(2)
  EXPECT_EQ(report.max_dependence_distance, 4);
  EXPECT_EQ(report.buffer_depth.at("E"), 5);         // 4 past values + current
  EXPECT_EQ(report.buffer_depth.at("B"), 3);
  EXPECT_EQ(report.buffer_depth.at("A"), 1);         // only same-iteration uses
  EXPECT_EQ(report.total_buffer_slots, 5 + 3 + 1 + 1 + 1);
}

TEST(Storage, DeltaIsZeroOnPureCycles) {
  // Retiming conserves delays around cycles; on a single-cycle graph every
  // edge is on the cycle, so the total is invariant.
  const DataFlowGraph g = single_cycle("cyc", {{"A", 1}, {"B", 1}, {"C", 1}},
                                       {1, 1, 1});
  Retiming r(g.node_count());
  r.set(0, 1);
  EXPECT_EQ(delay_register_delta(g, r), 0);
}

TEST(Storage, DeltaTracksFanout) {
  // A feeds two sinks with delayed edges: retiming A forward adds one delay
  // on each out-edge but removes only one from the in-side (none here), so
  // storage grows.
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 1);
  g.add_edge(b, a, 1);
  Retiming r(g.node_count());
  r.set(a, 1);
  ASSERT_TRUE(is_legal_retiming(g, r));
  EXPECT_EQ(delay_register_delta(g, r), +1);  // +1 +1 on fanout, −1 on B→A
}

TEST(Storage, DeltaMatchesDirectRecount) {
  const DataFlowGraph g = benchmarks::elliptic_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t before = storage_requirements(g).delay_registers;
  const std::int64_t after =
      storage_requirements(apply_retiming(g, r)).delay_registers;
  EXPECT_EQ(delay_register_delta(g, r), after - before);
}

TEST(Storage, RejectsIllegalRetiming) {
  const DataFlowGraph g = benchmarks::figure1_example();
  Retiming r(g.node_count());
  r.set(1, 5);
  EXPECT_THROW((void)delay_register_delta(g, r), InvalidArgument);
}

TEST(Builders, MacChainAlternatesAndChains) {
  DataFlowGraph g;
  const auto ids = add_mac_chain(g, "x", 4);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(g.node(ids[0]).name, "Mx1");
  EXPECT_EQ(g.node(ids[1]).name, "Ax2");
  EXPECT_EQ(g.edge_count(), 3u);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(g.edge(e).delay, 0);
  }
}

TEST(Builders, ReductionLayerHalves) {
  DataFlowGraph g;
  const auto leaves = add_mac_chain(g, "l", 4);
  // A chain is not a valid reduction input shape per se, but the builder
  // only wires pairs; verify structure.
  const auto layer = add_reduction_layer(g, "r", leaves);
  ASSERT_EQ(layer.size(), 2u);
  EXPECT_EQ(g.in_edges(layer[0]).size(), 2u);
  EXPECT_THROW(add_reduction_layer(g, "bad", {layer[0]}), InvalidArgument);
}

TEST(Builders, SingleCycleShape) {
  const DataFlowGraph g =
      single_cycle("ring", {{"A", 2}, {"B", 3}, {"C", 4}}, {0, 1, 1});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(iteration_bound(g), Rational(9, 2));
  EXPECT_THROW(single_cycle("bad", {{"A", 1}}, {1}), InvalidArgument);
  EXPECT_THROW(single_cycle("bad", {{"A", 1}, {"B", 1}}, {1}), InvalidArgument);
}

TEST(Storage, RandomGraphsBuffersCoverDistances) {
  SplitMix64 rng(2020);
  for (int trial = 0; trial < 30; ++trial) {
    const DataFlowGraph g = random_dfg(rng);
    const StorageReport report = storage_requirements(g);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      EXPECT_GE(report.buffer_depth.at(g.node(edge.from).name), edge.delay + 1);
    }
  }
}

}  // namespace
}  // namespace csr
