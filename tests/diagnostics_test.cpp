// Tests for the retiming/scheduling diagnostics helpers.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/algorithms.hpp"
#include "retiming/diagnostics.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(Diagnostics, LegalRetimingHasNoViolations) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  EXPECT_TRUE(explain_retiming(g, r).empty());
}

TEST(Diagnostics, ExplainsEachBrokenEdge) {
  const DataFlowGraph g = benchmarks::figure4_example();
  Retiming r(g.node_count());
  r.set(*g.find_node("B"), 1);  // breaks A→B (delay 0)
  const auto violations = explain_retiming(g, r);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].resulting_delay, -1);
  EXPECT_NE(violations[0].description.find("A->B"), std::string::npos);
  EXPECT_NE(violations[0].description.find("= -1"), std::string::npos);
}

TEST(Diagnostics, ViolationsMatchLegalityCheck) {
  const DataFlowGraph g = benchmarks::iir_filter();
  for (int k = 0; k < static_cast<int>(g.node_count()); ++k) {
    Retiming r(g.node_count());
    r.set(static_cast<NodeId>(k), 2);
    EXPECT_EQ(is_legal_retiming(g, r), explain_retiming(g, r).empty()) << k;
  }
}

TEST(Diagnostics, CriticalPathLengthEqualsCyclePeriod) {
  for (const auto& info : benchmarks::all_graphs()) {
    const DataFlowGraph g = info.factory();
    const auto path = critical_path(g);
    int time = 0;
    for (const NodeId v : path) time += g.node(v).time;
    EXPECT_EQ(time, cycle_period(g)) << info.name;
    // Consecutive path nodes are connected by zero-delay edges.
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      bool connected = false;
      for (const EdgeId e : g.out_edges(path[k])) {
        if (g.edge(e).to == path[k + 1] && g.edge(e).delay == 0) connected = true;
      }
      EXPECT_TRUE(connected) << info.name;
    }
  }
}

TEST(Diagnostics, CriticalPathOfEmptyGraph) {
  EXPECT_TRUE(critical_path(DataFlowGraph{}).empty());
}

TEST(Diagnostics, CriticalPathThrowsOnZeroDelayCycle) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_THROW(critical_path(g), InvalidArgument);
}

TEST(Diagnostics, FormatPathRendersNamesAndTime) {
  const DataFlowGraph g = benchmarks::chao_sha_example();
  const auto path = critical_path(g);
  const std::string text = format_path(g, path);
  EXPECT_NE(text.find(" -> "), std::string::npos);
  EXPECT_NE(text.find("(time " + std::to_string(cycle_period(g)) + ")"),
            std::string::npos);
}

}  // namespace
}  // namespace csr
