// The empirical proof of the paper's correctness theorems: every transformed
// program — software-pipelined (4.1/4.2), unfolded, retimed-unfolded
// (4.6/4.7) and unfolded-retimed, in both expanded and CSR forms — must
// leave exactly the same observable array state as the original loop, and
// must write every array index 1..n exactly once. Parameterized over all
// benchmark graphs, several trip counts and unfolding factors.
//
// The second half is the three-way differential harness (docs/ENGINES.md):
// for each paper benchmark and codegen variant, the map-backed reference
// interpreter, the VM fast path and the native compiled kernel must agree
// on the final array state cell by cell.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "native/compile.hpp"
#include "native/engine.hpp"
#include "retiming/opt.hpp"
#include "unfolding/unfold.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

struct Case {
  std::string graph_name;
  std::int64_t n;
  int factor;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.graph_name + "_n" + std::to_string(info.param.n) +
                     "_f" + std::to_string(info.param.factor);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto& info : benchmarks::all_graphs()) {
    for (const std::int64_t n : {17, 20, 23}) {
      for (const int f : {2, 3, 4}) {
        cases.push_back({info.name, n, f});
      }
    }
  }
  return cases;
}

class EquivalenceTest : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    const auto& graphs = benchmarks::all_graphs();
    const auto it = std::find_if(graphs.begin(), graphs.end(), [&](const auto& b) {
      return b.name == GetParam().graph_name;
    });
    ASSERT_NE(it, graphs.end());
    graph_ = it->factory();
    arrays_ = array_names(graph_);
    n_ = GetParam().n;
    factor_ = GetParam().factor;
    reference_ = run_program(original_program(graph_, n_));
  }

  void expect_equivalent(const LoopProgram& p, const char* label) {
    const Machine m = run_program(p);
    const auto diffs = diff_observable_state(reference_, m, arrays_, n_);
    EXPECT_TRUE(diffs.empty()) << label << ": " << (diffs.empty() ? "" : diffs.front());
    const auto discipline = check_write_discipline(m, arrays_, n_);
    EXPECT_TRUE(discipline.empty())
        << label << ": " << (discipline.empty() ? "" : discipline.front());
  }

  DataFlowGraph graph_;
  std::vector<std::string> arrays_;
  std::int64_t n_ = 0;
  int factor_ = 1;
  Machine reference_;
};

TEST_P(EquivalenceTest, OriginalWriteDiscipline) {
  EXPECT_TRUE(check_write_discipline(reference_, arrays_, n_).empty());
}

TEST_P(EquivalenceTest, RetimedExpandedMatches) {
  const Retiming r = minimum_period_retiming(graph_).retiming;
  ASSERT_GT(n_, r.max_value());
  expect_equivalent(retimed_program(graph_, r, n_), "retimed");
}

TEST_P(EquivalenceTest, RetimedCsrMatches) {
  const Retiming r = minimum_period_retiming(graph_).retiming;
  ASSERT_GT(n_, r.max_value());
  expect_equivalent(retimed_csr_program(graph_, r, n_), "retimed CSR");
}

TEST_P(EquivalenceTest, UnfoldedExpandedMatches) {
  expect_equivalent(unfolded_program(graph_, factor_, n_), "unfolded");
}

TEST_P(EquivalenceTest, UnfoldedCsrMatches) {
  expect_equivalent(unfolded_csr_program(graph_, factor_, n_), "unfolded CSR");
}

TEST_P(EquivalenceTest, RetimedUnfoldedExpandedMatches) {
  const Retiming r = minimum_period_retiming(graph_).retiming;
  ASSERT_GT(n_, r.max_value());
  expect_equivalent(retimed_unfolded_program(graph_, r, factor_, n_),
                    "retimed+unfolded");
}

TEST_P(EquivalenceTest, RetimedUnfoldedCsrMatches) {
  const Retiming r = minimum_period_retiming(graph_).retiming;
  ASSERT_GT(n_, r.max_value());
  expect_equivalent(retimed_unfolded_csr_program(graph_, r, factor_, n_),
                    "retimed+unfolded CSR");
}

TEST_P(EquivalenceTest, UnfoldedRetimedExpandedMatches) {
  const Unfolding u(graph_, factor_);
  const OptimalRetiming opt = minimum_period_retiming(u.graph());
  if (n_ / factor_ <= opt.retiming.max_value()) {
    GTEST_SKIP() << "trip count too small for this pipeline depth";
  }
  expect_equivalent(unfolded_retimed_program(u, opt.retiming, n_), "unfolded+retimed");
}

TEST_P(EquivalenceTest, UnfoldedRetimedCsrMatches) {
  const Unfolding u(graph_, factor_);
  const OptimalRetiming opt = minimum_period_retiming(u.graph());
  if (n_ / factor_ <= opt.retiming.max_value()) {
    GTEST_SKIP() << "trip count too small for this pipeline depth";
  }
  expect_equivalent(unfolded_retimed_csr_program(u, opt.retiming, n_),
                    "unfolded+retimed CSR");
}

TEST_P(EquivalenceTest, DeeperThanMinimalRetimingStillMatches) {
  // CSR correctness is independent of *which* legal retiming is used; push
  // one extra delay through every node with full incoming slack.
  Retiming r = minimum_period_retiming(graph_).retiming;
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    Retiming deeper = r;
    deeper.set(v, deeper[v] + 1);
    if (is_legal_retiming(graph_, deeper) && n_ > deeper.normalized().max_value()) {
      r = deeper;
      break;
    }
  }
  expect_equivalent(retimed_csr_program(graph_, r, n_), "deeper retimed CSR");
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, EquivalenceTest, ::testing::ValuesIn(make_cases()),
                         case_name);

// ---------------------------------------------------------------------------
// Three-way differential: map reference vs VM fast path vs native kernel.
// One fixed (n, f) per benchmark keeps the compile set small (the shared
// objects are content-cached across test runs); variant coverage is what
// matters — every codegen path the sweep driver can emit.

std::string benchmark_case_name(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

std::vector<std::string> table_benchmark_names() {
  std::vector<std::string> names;
  for (const auto& info : benchmarks::table_benchmarks()) names.push_back(info.name);
  return names;
}

class ThreeWayDifferentialTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
    const auto& graphs = benchmarks::all_graphs();
    const auto it = std::find_if(graphs.begin(), graphs.end(), [&](const auto& b) {
      return b.name == GetParam();
    });
    ASSERT_NE(it, graphs.end());
    graph_ = it->factory();
    arrays_ = array_names(graph_);
  }

  /// The three engines run `p` independently; every pair must agree, and
  /// every engine must satisfy the write discipline.
  void expect_three_way_agreement(const LoopProgram& p, const char* label) {
    const Machine reference = run_program(p, ExecMode::kReference);
    const Machine vm = run_program(p, ExecMode::kFast);
    const native::NativeOutcome out = native::run_native(p);
    ASSERT_TRUE(out.ok()) << label << ": " << out.diagnostic;

    const MachineView ref_view(reference);
    const MachineView vm_view(vm);
    const auto ref_vs_vm = diff_observable_state(ref_view, vm_view, arrays_, n_);
    EXPECT_TRUE(ref_vs_vm.empty())
        << label << " map-vs-vm: " << (ref_vs_vm.empty() ? "" : ref_vs_vm.front());
    const auto vm_vs_native = diff_observable_state(vm_view, out.result, arrays_, n_);
    EXPECT_TRUE(vm_vs_native.empty())
        << label
        << " vm-vs-native: " << (vm_vs_native.empty() ? "" : vm_vs_native.front());
    const auto ref_vs_native =
        diff_observable_state(ref_view, out.result, arrays_, n_);
    EXPECT_TRUE(ref_vs_native.empty())
        << label
        << " map-vs-native: " << (ref_vs_native.empty() ? "" : ref_vs_native.front());
    EXPECT_TRUE(check_write_discipline(out.result, arrays_, n_).empty()) << label;
    EXPECT_EQ(out.result.executed_statements(), vm.executed_statements()) << label;
    EXPECT_EQ(out.result.disabled_statements(), vm.disabled_statements()) << label;
  }

  DataFlowGraph graph_;
  std::vector<std::string> arrays_;
  const std::int64_t n_ = 23;
  const int factor_ = 3;
};

TEST_P(ThreeWayDifferentialTest, Original) {
  expect_three_way_agreement(original_program(graph_, n_), "original");
}

TEST_P(ThreeWayDifferentialTest, RetimedAndCsr) {
  const Retiming r = minimum_period_retiming(graph_).retiming;
  ASSERT_GT(n_, r.max_value());
  expect_three_way_agreement(retimed_program(graph_, r, n_), "retimed");
  expect_three_way_agreement(retimed_csr_program(graph_, r, n_), "retimed CSR");
}

TEST_P(ThreeWayDifferentialTest, UnfoldedAndCsr) {
  expect_three_way_agreement(unfolded_program(graph_, factor_, n_), "unfolded");
  expect_three_way_agreement(unfolded_csr_program(graph_, factor_, n_),
                             "unfolded CSR");
}

TEST_P(ThreeWayDifferentialTest, RetimedUnfoldedAndCsr) {
  const Retiming r = minimum_period_retiming(graph_).retiming;
  ASSERT_GT(n_, r.max_value());
  expect_three_way_agreement(retimed_unfolded_program(graph_, r, factor_, n_),
                             "retimed+unfolded");
  expect_three_way_agreement(retimed_unfolded_csr_program(graph_, r, factor_, n_),
                             "retimed+unfolded CSR");
}

TEST_P(ThreeWayDifferentialTest, UnfoldedRetimedCsr) {
  const Unfolding u(graph_, factor_);
  const OptimalRetiming opt = minimum_period_retiming(u.graph());
  if (n_ / factor_ <= opt.retiming.max_value()) {
    GTEST_SKIP() << "trip count too small for this pipeline depth";
  }
  expect_three_way_agreement(unfolded_retimed_csr_program(u, opt.retiming, n_),
                             "unfolded+retimed CSR");
}

INSTANTIATE_TEST_SUITE_P(PaperBenchmarks, ThreeWayDifferentialTest,
                         ::testing::ValuesIn(table_benchmark_names()),
                         benchmark_case_name);

}  // namespace
}  // namespace csr
