// The four-way differential harness around the exact engine: every paper
// benchmark is swept with the heuristic AND the exact engine across all
// three execution engines (vm, map, native), so each cell cross-checks
//
//     heuristic-vs-exact  ×  map-vs-VM / VM-vs-native
//
// and the optimality_gap column certifies the heuristic's period. Random
// DFGs extend the property beyond the six benchmarks. CI runs this suite
// under the `exact` label, and again under ASan/UBSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/random.hpp"
#include "driver/config.hpp"
#include "driver/export.hpp"
#include "retiming/exact.hpp"
#include "retiming/opt.hpp"
#include "retiming/retiming.hpp"
#include "support/rng.hpp"

namespace csr::driver {
namespace {

std::vector<std::string> table_benchmark_names() {
  std::vector<std::string> names;
  for (const auto& info : benchmarks::table_benchmarks()) {
    names.push_back(info.name);
  }
  return names;
}

TEST(ExactDifferential, FourWayHarnessPassesOnAllSixBenchmarks) {
  // Six benchmarks × {opt-retiming, opt-exact} × {vm, map, native} on the
  // retimed CSR form. Native cells degrade to the VM (with the failure
  // preserved) on hosts without a toolchain, so the suite is portable; the
  // verification bit must hold either way.
  const SweepRun run = run_sweep(
      SweepConfig()
          .benchmarks(table_benchmark_names())
          .engines({Engine::kOptRetiming, Engine::kOptExact})
          .exec_engines({ExecEngine::kVm, ExecEngine::kMap, ExecEngine::kNative})
          .transforms({Transform::kRetimedCsr})
          .factors({})
          .trip_counts({13})
          .threads(0));
  ASSERT_EQ(run.results.size(), 6u * 2u * 3u);
  for (const SweepResult& res : run.results) {
    SCOPED_TRACE(res.cell.benchmark + " engine=" +
                 std::string(to_string(res.cell.engine)) + " exec=" +
                 std::string(to_string(res.cell.exec)));
    ASSERT_TRUE(res.feasible) << res.error;
    EXPECT_TRUE(res.evaluated);
    EXPECT_FALSE(res.skipped) << res.skip_reason;
    EXPECT_TRUE(res.verified);
    EXPECT_TRUE(res.discipline_ok);
    // Both engines are period-optimal, so every gap is exactly 0 — the
    // acceptance criterion behind the optimality_gap export column.
    EXPECT_EQ(res.optimality_gap, 0);
  }

  // The same cells must agree across engines on the achieved period: the
  // exact certificate and the heuristic witness describe one optimum.
  for (const SweepResult& a : run.results) {
    for (const SweepResult& b : run.results) {
      if (a.cell.benchmark == b.cell.benchmark) {
        EXPECT_EQ(a.period, b.period) << a.cell.benchmark;
      }
    }
  }
}

TEST(ExactDifferential, ResourceConstrainedEnginesReportNonNegativeGaps) {
  // Rotation and modulo schedule under a finite resource model, so their
  // period may exceed the resource-oblivious exact minimum — the gap is the
  // new science axis. It must never be negative (the exact engine is a true
  // lower bound) and engine-less transforms must not carry a gap at all.
  const SweepRun run = run_sweep(
      SweepConfig()
          .benchmarks(table_benchmark_names())
          .engines({Engine::kRotation, Engine::kModulo})
          .transforms({Transform::kOriginal, Transform::kRetimedCsr})
          .factors({})
          .trip_counts({13})
          .threads(0));
  for (const SweepResult& res : run.results) {
    SCOPED_TRACE(res.cell.benchmark + " engine=" +
                 std::string(to_string(res.cell.engine)) + " transform=" +
                 std::string(to_string(res.cell.transform)));
    if (!res.feasible) continue;  // modulo may legitimately find no schedule
    if (res.cell.transform == Transform::kOriginal) {
      EXPECT_EQ(res.optimality_gap, -1);  // no engine ran: no gap defined
    } else {
      EXPECT_GE(res.optimality_gap, 0);
    }
  }
}

TEST(ExactDifferential, GapColumnRoundTripsThroughJournalAndExports) {
  const SweepRun run = run_sweep(SweepConfig()
                                     .benchmarks({table_benchmark_names().front()})
                                     .engines({Engine::kOptExact})
                                     .transforms({Transform::kRetimedCsr})
                                     .factors({})
                                     .trip_counts({13}));
  ASSERT_EQ(run.results.size(), 1u);
  const SweepResult& res = run.results.front();
  ASSERT_TRUE(res.feasible) << res.error;
  EXPECT_EQ(res.optimality_gap, 0);

  // Journal payload codec round-trips the new field.
  SweepResult replayed;
  ASSERT_TRUE(
      from_journal_payload(to_journal_payload(res), res.cell, replayed));
  EXPECT_EQ(replayed.optimality_gap, res.optimality_gap);

  // Exports carry the column: CSV appends it after `verified`, JSON keys it.
  // (measured_size and the loop_dims/rows/cols shape columns now trail the
  // gap — pin the gap cell by its separators.)
  const std::string csv = to_csv(run.results);
  EXPECT_NE(csv.find("optimality_gap"), std::string::npos);
  EXPECT_NE(csv.find(",yes,0," + std::to_string(res.measured_size) + ",1,-,-\n"),
            std::string::npos);
  const std::string json = to_json(run.results);
  EXPECT_NE(json.find("\"optimality_gap\": 0"), std::string::npos);

  // Engine-less transforms export "-" in CSV and -1 in JSON.
  const SweepRun original = run_sweep(SweepConfig()
                                          .benchmarks({res.cell.benchmark})
                                          .transforms({Transform::kOriginal})
                                          .factors({})
                                          .trip_counts({13}));
  ASSERT_EQ(original.results.size(), 1u);
  EXPECT_EQ(original.results.front().optimality_gap, -1);
  EXPECT_NE(
      to_csv(original.results)
          .find(",-," + std::to_string(original.results.front().measured_size) +
                ",1,-,-\n"),
      std::string::npos);
  EXPECT_NE(to_json(original.results).find("\"optimality_gap\": -1"),
            std::string::npos);
}

TEST(ExactDifferential, RandomGraphsAgreeAcrossHeuristicAndExact) {
  // ≥100 random DFGs: the heuristic's period must equal the certified
  // optimum, and both witnesses must be legal retimings achieving it. This
  // is the randomized leg of the acceptance criterion.
  SplitMix64 rng(0xD1FFE4ull);
  RandomDfgOptions options;
  for (int trial = 0; trial < 120; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    const DataFlowGraph g = random_dfg(rng, options);
    const OptimalRetiming heuristic = minimum_period_retiming(g);
    const ExactRetiming exact = exact_optimal_retiming(g);
    EXPECT_EQ(heuristic.period, exact.period);
    EXPECT_TRUE(is_legal_retiming(g, heuristic.retiming));
    EXPECT_TRUE(is_legal_retiming(g, exact.retiming));
    EXPECT_LE(cycle_period(apply_retiming(g, exact.retiming)), exact.period);
    EXPECT_LE(cycle_period(apply_retiming(g, heuristic.retiming)),
              heuristic.period);
  }
}

}  // namespace
}  // namespace csr::driver
