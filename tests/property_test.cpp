// Randomized property tests tying the whole pipeline together: on random
// legal DFGs, minimum-period retiming and all code-generation paths must
// produce semantically equivalent programs with model-exact code sizes.
// The second half checks the *structural* invariants of Section 2.2 and
// Theorem 4.3 on random graphs, and the sweep driver's determinism
// contract: exports are byte-identical across worker counts, steal orders
// and journal warmth.

#include <gtest/gtest.h>

#include <cstdio>

#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "dfg/random.hpp"
#include "driver/config.hpp"
#include "driver/export.hpp"
#include "loopir/pipeline.hpp"
#include "native/compile.hpp"
#include "native/engine.hpp"
#include "retiming/opt.hpp"
#include "unfolding/unfold.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

class RandomPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPipelineTest, EndToEnd) {
  SplitMix64 rng(GetParam());
  RandomDfgOptions options;
  options.max_nodes = 10;
  for (int trial = 0; trial < 25; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const std::int64_t n = 19;
    const Machine reference = run_program(original_program(g, n));
    const auto arrays = array_names(g);
    ASSERT_TRUE(check_write_discipline(reference, arrays, n).empty());

    const OptimalRetiming opt = minimum_period_retiming(g);
    ASSERT_TRUE(is_legal_retiming(g, opt.retiming));
    ASSERT_LE(cycle_period(apply_retiming(g, opt.retiming)), opt.period);

    auto verify = [&](const LoopProgram& p, const char* label) {
      const Machine m = run_program(p);
      const auto diffs = diff_observable_state(reference, m, arrays, n);
      ASSERT_TRUE(diffs.empty()) << label << " trial " << trial << ": " << diffs[0];
      const auto discipline = check_write_discipline(m, arrays, n);
      ASSERT_TRUE(discipline.empty())
          << label << " trial " << trial << ": " << discipline[0];
    };

    if (n > opt.retiming.max_value()) {
      const auto retimed = retimed_program(g, opt.retiming, n);
      ASSERT_EQ(retimed.code_size(), predicted_retimed_size(g, opt.retiming));
      verify(retimed, "retimed");
      verify(retimed_csr_program(g, opt.retiming, n), "retimed CSR");
      for (const int f : {2, 3}) {
        verify(retimed_unfolded_program(g, opt.retiming, f, n), "r+u");
        verify(retimed_unfolded_csr_program(g, opt.retiming, f, n), "r+u CSR");
      }
    }
    for (const int f : {2, 3, 5}) {
      verify(unfolded_program(g, f, n), "unfolded");
      verify(unfolded_csr_program(g, f, n), "unfolded CSR");
    }
    for (const int f : {2, 3}) {
      const Unfolding u(g, f);
      const OptimalRetiming uopt = minimum_period_retiming(u.graph());
      if (n / f > uopt.retiming.max_value()) {
        verify(unfolded_retimed_program(u, uopt.retiming, n), "u+r");
        verify(unfolded_retimed_csr_program(u, uopt.retiming, n), "u+r CSR");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 1234ull,
                                           0xDEADBEEFull, 0xC0FFEEull));

class OptimizerPipelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizerPipelinePropertyTest, EveryVariantOptimizesCleanly) {
  // The peephole pipeline's contract on random DFGs across *every* codegen
  // variant: it converges within the bound, a second run is a no-op, the
  // program never grows, and the optimized program leaves the observable
  // state of the unoptimized one. 4 seeds × 25 trials × ~9 variants ≥ 100
  // random DFGs, matching the randomized acceptance leg.
  SplitMix64 rng(GetParam());
  RandomDfgOptions options;
  options.max_nodes = 9;
  for (int trial = 0; trial < 25; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const std::int64_t n = 17 + trial % 7;
    const auto arrays = array_names(g);
    const OptimalRetiming opt = minimum_period_retiming(g);

    std::vector<LoopProgram> programs;
    programs.push_back(original_program(g, n));
    for (const int f : {2, 3}) {
      programs.push_back(unfolded_program(g, f, n));
      programs.push_back(unfolded_csr_program(g, f, n));
    }
    if (n > opt.retiming.max_value()) {
      programs.push_back(retimed_program(g, opt.retiming, n));
      programs.push_back(retimed_csr_program(g, opt.retiming, n));
      programs.push_back(retimed_unfolded_csr_program(g, opt.retiming, 3, n));
    }

    for (const LoopProgram& p : programs) {
      SCOPED_TRACE(::testing::Message() << p.name << " trial " << trial);
      const PipelineResult result = optimize_pipeline(p);
      ASSERT_TRUE(result.converged);
      ASSERT_LE(result.iterations, PipelineOptions{}.max_iterations);
      ASSERT_LE(result.size_after, result.size_before);
      ASSERT_TRUE(result.program.validate().empty());
      const auto diffs = compare_programs(p, result.program, arrays);
      ASSERT_TRUE(diffs.empty()) << diffs[0];
      const PipelineResult again = optimize_pipeline(result.program);
      ASSERT_EQ(again.totals.total(), 0);
      ASSERT_EQ(again.iterations, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPipelinePropertyTest,
                         ::testing::Values(11ull, 22ull, 33ull, 0xAB5EEDull));

TEST(RandomPipeline, ThreeEnginesAgreeOnRandomDfgs) {
  // The differential property on arbitrary (not hand-picked) programs: for
  // random legal DFGs, the map reference interpreter, the VM fast path and
  // the native compiled kernel must leave identical observable state on the
  // original and retimed-CSR forms. Few trials — every random program is a
  // fresh kernel, so each one costs a real host-compiler invocation.
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  SplitMix64 rng(0x3E3E3E3Eull);
  RandomDfgOptions options;
  options.max_nodes = 8;
  const std::int64_t n = 13;
  for (int trial = 0; trial < 4; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const auto arrays = array_names(g);
    const OptimalRetiming opt = minimum_period_retiming(g);

    std::vector<LoopProgram> programs;
    programs.push_back(original_program(g, n));
    if (n > opt.retiming.max_value()) {
      programs.push_back(retimed_csr_program(g, opt.retiming, n));
    }
    for (const LoopProgram& p : programs) {
      const Machine reference = run_program(p, ExecMode::kReference);
      const Machine vm = run_program(p, ExecMode::kFast);
      const native::NativeOutcome out = native::run_native(p);
      ASSERT_TRUE(out.ok()) << "trial " << trial << ": " << out.diagnostic;

      const MachineView ref_view(reference);
      const MachineView vm_view(vm);
      const auto a = diff_observable_state(ref_view, vm_view, arrays, n);
      ASSERT_TRUE(a.empty()) << "map-vs-vm trial " << trial << ": " << a[0];
      const auto b = diff_observable_state(vm_view, out.result, arrays, n);
      ASSERT_TRUE(b.empty()) << "vm-vs-native trial " << trial << ": " << b[0];
      ASSERT_TRUE(check_write_discipline(out.result, arrays, n).empty()) << trial;
      ASSERT_EQ(out.result.executed_statements(), vm.executed_statements()) << trial;
    }
  }
}

TEST(RandomPipeline, RetimingNeverBeatsIterationBound) {
  SplitMix64 rng(2468);
  RandomDfgOptions options;
  options.max_time = 3;
  for (int trial = 0; trial < 60; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const auto bound = iteration_bound(g);
    const OptimalRetiming opt = minimum_period_retiming(g);
    if (bound) {
      EXPECT_GE(Rational(opt.period), *bound) << trial;
    }
  }
}

TEST(RandomPipeline, UnfoldingApproachesFractionalBounds) {
  // For graphs with fractional bound p/q, unfolding by q and retiming must
  // reach iteration period exactly p/q (Chao–Sha rate-optimality).
  SplitMix64 rng(1357);
  RandomDfgOptions options;
  options.max_nodes = 7;
  int fractional_seen = 0;
  for (int trial = 0; trial < 80 && fractional_seen < 8; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const auto bound = iteration_bound(g);
    if (!bound || bound->is_integer() || bound->den() > 4) continue;
    ++fractional_seen;
    const int q = static_cast<int>(bound->den());
    const Unfolding u(g, q);
    const OptimalRetiming opt = minimum_period_retiming(u.graph());
    EXPECT_EQ(Rational(opt.period, q), *bound) << trial;
  }
  EXPECT_GT(fractional_seen, 0);
}

std::int64_t statement_count(const LoopSegment& seg) {
  std::int64_t count = 0;
  for (const Instruction& instr : seg.instructions) {
    if (instr.kind == InstrKind::kStatement) ++count;
  }
  return count;
}

TEST(PaperInvariants, NormalizedRetimingExpansionMatchesClosedForms) {
  // Section 2.2 as a structural property: software-pipelining a loop under a
  // normalized retiming puts exactly r(v) copies of each node v into the
  // prologue and M_r − r(v) into the epilogue — so the generated program's
  // prologue holds Σ_v r(v) statements and its epilogue Σ_v (M_r − r(v)),
  // exactly the pipeline_expansion() census.
  SplitMix64 rng(0x5EEDF00Dull);
  RandomDfgOptions options;
  options.max_nodes = 9;
  const std::int64_t n = 31;
  for (int trial = 0; trial < 40; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const Retiming r = minimum_period_retiming(g).retiming.normalized();
    if (n <= r.max_value() + 1) continue;  // keep the steady loop multi-trip
    const PipelineExpansion census = pipeline_expansion(g, r);
    ASSERT_EQ(census.depth, r.max_value()) << trial;

    const LoopProgram p = retimed_program(g, r, n);
    // Shape: straight-line prologue segments, one multi-trip steady-state
    // loop, straight-line epilogue segments.
    std::int64_t prologue = 0;
    std::int64_t epilogue = 0;
    std::int64_t body = -1;
    bool seen_loop = false;
    for (const LoopSegment& seg : p.segments) {
      if (!seg.straight_line()) {
        ASSERT_FALSE(seen_loop) << trial << ": two steady-state loops";
        seen_loop = true;
        body = statement_count(seg);
      } else if (!seen_loop) {
        prologue += statement_count(seg);
      } else {
        epilogue += statement_count(seg);
      }
    }
    ASSERT_TRUE(seen_loop) << trial;
    EXPECT_EQ(prologue, census.prologue_statements) << trial;
    EXPECT_EQ(epilogue, census.epilogue_statements) << trial;
    EXPECT_EQ(body, original_size(g)) << trial;  // one statement per node
  }
}

TEST(PaperInvariants, RetimedCsrIsLoopBodyAloneWithRegisterOverhead) {
  // Theorem 4.3 as a structural property: the CSR form removes prologue and
  // epilogue entirely. Every statement copy lives in the single loop — one
  // guarded statement per node, L_orig in total — and the only additions are
  // |N_r| register setups before the loop and |N_r| decrements inside it.
  SplitMix64 rng(0xCA5CADEull);
  RandomDfgOptions options;
  options.max_nodes = 9;
  const std::int64_t n = 31;
  for (int trial = 0; trial < 40; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const Retiming r = minimum_period_retiming(g).retiming.normalized();
    if (n <= r.max_value()) continue;
    const std::int64_t regs = registers_required(r);
    ASSERT_EQ(regs, static_cast<std::int64_t>(r.distinct_values().size())) << trial;

    const LoopProgram p = retimed_csr_program(g, r, n);
    std::int64_t statements = 0;
    std::int64_t setups = 0;
    std::int64_t decrements = 0;
    std::int64_t statements_outside_loop = 0;
    for (const LoopSegment& seg : p.segments) {
      for (const Instruction& instr : seg.instructions) {
        switch (instr.kind) {
          case InstrKind::kStatement:
            ++statements;
            if (seg.straight_line()) ++statements_outside_loop;
            break;
          case InstrKind::kSetup:
            ++setups;
            break;
          case InstrKind::kDecrement:
            ++decrements;
            break;
        }
      }
    }
    EXPECT_EQ(statements, original_size(g)) << trial;  // the loop body alone
    EXPECT_EQ(statements_outside_loop, 0) << trial;    // no prologue/epilogue
    EXPECT_EQ(setups, regs) << trial;
    EXPECT_EQ(decrements, regs) << trial;
    EXPECT_EQ(p.code_size(), original_size(g) + 2 * regs) << trial;
    EXPECT_EQ(static_cast<std::int64_t>(p.conditional_registers().size()), regs)
        << trial;
  }
}

/// Removes a file on scope exit — temp journals must not leak across tests.
class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
  }
  ~ScopedFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

driver::SweepConfig small_config() {
  return driver::SweepConfig()
      .benchmarks({"IIR Filter", "Differential Equation"})
      .trip_counts({23})
      .factors({2, 3});
}

TEST(SweepProperties, ExportsIndependentOfWorkerCountAndStealOrder) {
  // The determinism contract: result slot i always holds cell i's result,
  // so the default exports are byte-identical for any thread count and any
  // steal-victim permutation.
  const driver::SweepConfig base = small_config();
  const auto reference = driver::run_sweep(driver::SweepConfig(base).threads(1));
  const std::string ref_csv = driver::to_csv(reference.results);
  const std::string ref_json = driver::to_json(reference.results);
  EXPECT_FALSE(ref_csv.empty());

  for (const unsigned threads : {2u, 5u, 8u}) {
    for (const std::uint64_t seed : {0ull, 0xFEEDull}) {
      const auto run = driver::run_sweep(
          driver::SweepConfig(base).threads(threads).steal_seed(seed));
      EXPECT_EQ(driver::to_csv(run.results), ref_csv) << threads << '/' << seed;
      EXPECT_EQ(driver::to_json(run.results), ref_json) << threads << '/' << seed;
    }
  }
}

TEST(SweepProperties, JournalReplayIsByteIdenticalAndExecutesNothing) {
  // The persistent-cache contract: a warm re-run replays every cell from
  // the journal (zero executions) and its default exports are byte-equal to
  // both the cold run's and an unjournaled run's.
  const driver::SweepConfig base = small_config();
  const ScopedFile journal(::testing::TempDir() + "csr_property_journal.tsv");

  const driver::SweepConfig journaled =
      driver::SweepConfig(base).threads(4).journal(journal.path());

  const auto first = driver::run_sweep(journaled);
  EXPECT_EQ(first.stats.cache_hits, 0u);
  EXPECT_EQ(first.stats.executed, first.stats.total_cells);
  EXPECT_GT(first.stats.total_cells, 0u);

  const auto second = driver::run_sweep(journaled);
  EXPECT_EQ(second.stats.executed, 0u);
  EXPECT_EQ(second.stats.cache_hits, second.stats.total_cells);

  const auto plain = driver::run_sweep(driver::SweepConfig(base).threads(4));

  EXPECT_EQ(driver::to_csv(second.results), driver::to_csv(first.results));
  EXPECT_EQ(driver::to_json(second.results), driver::to_json(first.results));
  EXPECT_EQ(driver::to_csv(plain.results), driver::to_csv(first.results));
  EXPECT_EQ(driver::to_json(plain.results), driver::to_json(first.results));
  for (const auto& r : second.results) EXPECT_TRUE(r.from_cache);
}

TEST(SweepProperties, JournalPayloadRoundTripsHostileStrings) {
  // The payload codec must round-trip any diagnostic text — including the
  // codec's own separator and escape characters.
  driver::SweepResult r;
  r.cell.benchmark = "IIR Filter";
  r.feasible = false;
  r.error = "tab\there \x1f unit \\ backslash\nnewline";
  r.skip_reason = "\x1f\x1f\\\\";
  r.fallback_reason = "cc: exited with status 1\n\tline 2";
  r.engine_fallback = true;
  r.iteration_bound = "8/3";
  r.period = Rational(7, 3);
  r.depth = 4;
  r.registers = 3;
  r.code_size = 17;
  r.predicted_size = 17;
  r.verified = true;
  r.discipline_ok = true;
  r.exec_statements = 12345;

  const std::string payload = driver::to_journal_payload(r);
  driver::SweepResult back;
  ASSERT_TRUE(driver::from_journal_payload(payload, r.cell, back));
  EXPECT_EQ(back.error, r.error);
  EXPECT_EQ(back.skip_reason, r.skip_reason);
  EXPECT_EQ(back.fallback_reason, r.fallback_reason);
  EXPECT_EQ(back.engine_fallback, r.engine_fallback);
  EXPECT_EQ(back.iteration_bound, r.iteration_bound);
  EXPECT_EQ(back.period, r.period);
  EXPECT_EQ(back.depth, r.depth);
  EXPECT_EQ(back.registers, r.registers);
  EXPECT_EQ(back.code_size, r.code_size);
  EXPECT_EQ(back.verified, r.verified);
  EXPECT_EQ(back.exec_statements, r.exec_statements);

  // Malformed payloads must be rejected, not misparsed: a corrupt journal
  // degrades to a cache miss, never to a wrong result.
  driver::SweepResult scratch;
  EXPECT_FALSE(driver::from_journal_payload("", r.cell, scratch));
  EXPECT_FALSE(driver::from_journal_payload("bogus-v9" + payload, r.cell, scratch));
  EXPECT_FALSE(
      driver::from_journal_payload(payload.substr(0, payload.size() / 2), r.cell,
                                   scratch));
}

TEST(SweepProperties, MeasuredSizeNeverExceedsGeneratedSize) {
  // The measured_size contract over a real sweep: every feasible evaluated
  // cell carries a measured size that never exceeds the generated program's
  // size (the pipeline only shrinks), and infeasible/unevaluated cells keep
  // the -1 sentinel.
  const auto run = driver::run_sweep(small_config());
  ASSERT_FALSE(run.results.empty());
  for (const auto& r : run.results) {
    if (r.feasible && r.evaluated && !r.skipped) {
      EXPECT_GE(r.measured_size, 0) << r.cell.benchmark;
      EXPECT_LE(r.measured_size, r.code_size) << r.cell.benchmark;
    } else {
      EXPECT_EQ(r.measured_size, -1) << r.cell.benchmark;
    }
  }
}

TEST(RandomPipeline, CsrRegisterCountInvariantUnderUnfolding) {
  // Theorem 4.7 as a property: for random graphs and factors, the
  // retime-first CSR register count equals |N_r| regardless of f.
  SplitMix64 rng(8642);
  for (int trial = 0; trial < 40; ++trial) {
    const DataFlowGraph g = random_dfg(rng);
    const OptimalRetiming opt = minimum_period_retiming(g);
    const std::int64_t n = 29;
    if (n <= opt.retiming.max_value()) continue;
    const auto base = registers_required(opt.retiming);
    for (const int f : {2, 3, 4}) {
      const LoopProgram p = retimed_unfolded_csr_program(g, opt.retiming, f, n);
      EXPECT_EQ(static_cast<std::int64_t>(p.conditional_registers().size()), base)
          << trial;
    }
  }
}

}  // namespace
}  // namespace csr
