// Randomized property tests tying the whole pipeline together: on random
// legal DFGs, minimum-period retiming and all code-generation paths must
// produce semantically equivalent programs with model-exact code sizes.

#include <gtest/gtest.h>

#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "dfg/random.hpp"
#include "native/compile.hpp"
#include "native/engine.hpp"
#include "retiming/opt.hpp"
#include "unfolding/unfold.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

class RandomPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPipelineTest, EndToEnd) {
  SplitMix64 rng(GetParam());
  RandomDfgOptions options;
  options.max_nodes = 10;
  for (int trial = 0; trial < 25; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const std::int64_t n = 19;
    const Machine reference = run_program(original_program(g, n));
    const auto arrays = array_names(g);
    ASSERT_TRUE(check_write_discipline(reference, arrays, n).empty());

    const OptimalRetiming opt = minimum_period_retiming(g);
    ASSERT_TRUE(is_legal_retiming(g, opt.retiming));
    ASSERT_LE(cycle_period(apply_retiming(g, opt.retiming)), opt.period);

    auto verify = [&](const LoopProgram& p, const char* label) {
      const Machine m = run_program(p);
      const auto diffs = diff_observable_state(reference, m, arrays, n);
      ASSERT_TRUE(diffs.empty()) << label << " trial " << trial << ": " << diffs[0];
      const auto discipline = check_write_discipline(m, arrays, n);
      ASSERT_TRUE(discipline.empty())
          << label << " trial " << trial << ": " << discipline[0];
    };

    if (n > opt.retiming.max_value()) {
      const auto retimed = retimed_program(g, opt.retiming, n);
      ASSERT_EQ(retimed.code_size(), predicted_retimed_size(g, opt.retiming));
      verify(retimed, "retimed");
      verify(retimed_csr_program(g, opt.retiming, n), "retimed CSR");
      for (const int f : {2, 3}) {
        verify(retimed_unfolded_program(g, opt.retiming, f, n), "r+u");
        verify(retimed_unfolded_csr_program(g, opt.retiming, f, n), "r+u CSR");
      }
    }
    for (const int f : {2, 3, 5}) {
      verify(unfolded_program(g, f, n), "unfolded");
      verify(unfolded_csr_program(g, f, n), "unfolded CSR");
    }
    for (const int f : {2, 3}) {
      const Unfolding u(g, f);
      const OptimalRetiming uopt = minimum_period_retiming(u.graph());
      if (n / f > uopt.retiming.max_value()) {
        verify(unfolded_retimed_program(u, uopt.retiming, n), "u+r");
        verify(unfolded_retimed_csr_program(u, uopt.retiming, n), "u+r CSR");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 1234ull,
                                           0xDEADBEEFull, 0xC0FFEEull));

TEST(RandomPipeline, ThreeEnginesAgreeOnRandomDfgs) {
  // The differential property on arbitrary (not hand-picked) programs: for
  // random legal DFGs, the map reference interpreter, the VM fast path and
  // the native compiled kernel must leave identical observable state on the
  // original and retimed-CSR forms. Few trials — every random program is a
  // fresh kernel, so each one costs a real host-compiler invocation.
  if (!native::native_available()) GTEST_SKIP() << "no host C compiler";
  SplitMix64 rng(0x3E3E3E3Eull);
  RandomDfgOptions options;
  options.max_nodes = 8;
  const std::int64_t n = 13;
  for (int trial = 0; trial < 4; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const auto arrays = array_names(g);
    const OptimalRetiming opt = minimum_period_retiming(g);

    std::vector<LoopProgram> programs;
    programs.push_back(original_program(g, n));
    if (n > opt.retiming.max_value()) {
      programs.push_back(retimed_csr_program(g, opt.retiming, n));
    }
    for (const LoopProgram& p : programs) {
      const Machine reference = run_program(p, ExecMode::kReference);
      const Machine vm = run_program(p, ExecMode::kFast);
      const native::NativeOutcome out = native::run_native(p);
      ASSERT_TRUE(out.ok()) << "trial " << trial << ": " << out.diagnostic;

      const MachineView ref_view(reference);
      const MachineView vm_view(vm);
      const auto a = diff_observable_state(ref_view, vm_view, arrays, n);
      ASSERT_TRUE(a.empty()) << "map-vs-vm trial " << trial << ": " << a[0];
      const auto b = diff_observable_state(vm_view, out.result, arrays, n);
      ASSERT_TRUE(b.empty()) << "vm-vs-native trial " << trial << ": " << b[0];
      ASSERT_TRUE(check_write_discipline(out.result, arrays, n).empty()) << trial;
      ASSERT_EQ(out.result.executed_statements(), vm.executed_statements()) << trial;
    }
  }
}

TEST(RandomPipeline, RetimingNeverBeatsIterationBound) {
  SplitMix64 rng(2468);
  RandomDfgOptions options;
  options.max_time = 3;
  for (int trial = 0; trial < 60; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const auto bound = iteration_bound(g);
    const OptimalRetiming opt = minimum_period_retiming(g);
    if (bound) {
      EXPECT_GE(Rational(opt.period), *bound) << trial;
    }
  }
}

TEST(RandomPipeline, UnfoldingApproachesFractionalBounds) {
  // For graphs with fractional bound p/q, unfolding by q and retiming must
  // reach iteration period exactly p/q (Chao–Sha rate-optimality).
  SplitMix64 rng(1357);
  RandomDfgOptions options;
  options.max_nodes = 7;
  int fractional_seen = 0;
  for (int trial = 0; trial < 80 && fractional_seen < 8; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const auto bound = iteration_bound(g);
    if (!bound || bound->is_integer() || bound->den() > 4) continue;
    ++fractional_seen;
    const int q = static_cast<int>(bound->den());
    const Unfolding u(g, q);
    const OptimalRetiming opt = minimum_period_retiming(u.graph());
    EXPECT_EQ(Rational(opt.period, q), *bound) << trial;
  }
  EXPECT_GT(fractional_seen, 0);
}

TEST(RandomPipeline, CsrRegisterCountInvariantUnderUnfolding) {
  // Theorem 4.7 as a property: for random graphs and factors, the
  // retime-first CSR register count equals |N_r| regardless of f.
  SplitMix64 rng(8642);
  for (int trial = 0; trial < 40; ++trial) {
    const DataFlowGraph g = random_dfg(rng);
    const OptimalRetiming opt = minimum_period_retiming(g);
    const std::int64_t n = 29;
    if (n <= opt.retiming.max_value()) continue;
    const auto base = registers_required(opt.retiming);
    for (const int f : {2, 3, 4}) {
      const LoopProgram p = retimed_unfolded_csr_program(g, opt.retiming, f, n);
      EXPECT_EQ(static_cast<std::int64_t>(p.conditional_registers().size()), base)
          << trial;
    }
  }
}

}  // namespace
}  // namespace csr
