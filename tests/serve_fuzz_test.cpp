// Seeded corpus-driven fuzzing of the serve-layer parsers: the handwritten
// HTTP/1.1 request parser and the JSON parser must reject arbitrary and
// mutated input with a typed error status — never a crash, hang, or
// out-of-bounds read (CI runs this under ASan+UBSan with raised
// CSR_FUZZ_ITERS). Also checks chunking invariance: a valid request must
// parse identically no matter how the bytes are split across feed() calls.
//
// Follows the fuzz_smoke_test.cpp conventions: fixed seed corpus, effort
// scaled by CSR_FUZZ_ITERS, SCOPED_TRACE pinning (seed, trial) for replay.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "support/rng.hpp"

namespace csr::serve {
namespace {

constexpr std::uint64_t kSeedCorpus[] = {
    0x5EBAE5E0ull, 0xF00DF00Dull, 0xBADC0DEull,  0x5EED0010ull,
    0x5EED0011ull, 0xDEADBEEFull, 0xC0FFEEull,   0x7E57ABCDull,
};

int iterations_per_seed() {
  if (const char* env = std::getenv("CSR_FUZZ_ITERS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 100;
}

template <typename Body>
void for_each_corpus_trial(Body body) {
  const int iters = iterations_per_seed();
  for (const std::uint64_t seed : kSeedCorpus) {
    SplitMix64 rng(seed);
    for (int trial = 0; trial < iters; ++trial) {
      SCOPED_TRACE(::testing::Message()
                   << "seed 0x" << std::hex << seed << std::dec << " trial "
                   << trial << " (rerun: CSR_FUZZ_ITERS=" << iters << ")");
      body(rng, trial);
    }
  }
}

const std::string kValidRequests[] = {
    "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
    "POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n"
    "Content-Length: 27\r\n\r\n{\"benchmarks\":[\"Figure 1\"]}",
    "GET /metrics HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
};

std::string mutate(const std::string& base, SplitMix64& rng) {
  std::string text = base;
  const int edits = static_cast<int>(rng.uniform(1, 6));
  for (int k = 0; k < edits && !text.empty(); ++k) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.uniform(0, 4)) {
      case 0:  // flip a byte — full range, including NUL and high bytes
        text[pos] = static_cast<char>(rng.uniform(0, 255));
        break;
      case 1:  // delete a span
        text.erase(pos, static_cast<std::size_t>(rng.uniform(1, 10)));
        break;
      case 2:  // duplicate a span
        text.insert(pos,
                    text.substr(pos, static_cast<std::size_t>(rng.uniform(1, 10))));
        break;
      case 3:  // inject a bare CR or LF (line-structure attacks)
        text.insert(pos, rng.uniform(0, 1) == 0 ? "\r" : "\n");
        break;
      default:  // splice in a header-ish fragment
        text.insert(pos, "X-A: \t b\r\n");
        break;
    }
  }
  return text;
}

/// Feeds `wire` into a parser in random-sized chunks and drains every
/// complete request. Returns false if the parser entered an error state.
bool drive(const std::string& wire, SplitMix64& rng,
           std::vector<HttpRequest>* out) {
  RequestParser parser{HttpLimits{}};
  std::size_t off = 0;
  ParseStatus status = ParseStatus::kNeedMore;
  while (off < wire.size() && status != ParseStatus::kError) {
    const auto step = static_cast<std::size_t>(
        rng.uniform(1, static_cast<std::int64_t>(wire.size())));
    const std::string_view chunk(wire.data() + off,
                                 std::min(step, wire.size() - off));
    off += chunk.size();
    parser.feed(chunk);
    HttpRequest request;
    while ((status = parser.next_request(&request)) == ParseStatus::kRequest) {
      if (out != nullptr) out->push_back(request);
      // Whatever parses must be internally coherent.
      EXPECT_FALSE(request.method.empty());
      EXPECT_FALSE(request.target.empty());
      for (const auto& [name, value] : request.headers) {
        EXPECT_FALSE(name.empty());
        for (const char c : name) {
          EXPECT_TRUE(c != '\r' && c != '\n' && c != ' ');
        }
        EXPECT_EQ(value.find('\n'), std::string::npos);
      }
    }
  }
  if (status == ParseStatus::kError) {
    // Errors are typed — one of the statuses the server can answer with.
    const int code = parser.error_status();
    EXPECT_TRUE(code == 400 || code == 413 || code == 431 || code == 501 ||
                code == 505)
        << "unexpected error status " << code;
    EXPECT_FALSE(parser.error_reason().empty());
    // Poisoned parsers must stay poisoned, even across a valid request.
    parser.feed("GET / HTTP/1.1\r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(parser.next_request(&request), ParseStatus::kError);
    EXPECT_EQ(parser.error_status(), code);
    return false;
  }
  return true;
}

TEST(ServeFuzz, HttpParserSurvivesRandomBytes) {
  for_each_corpus_trial([&](SplitMix64& rng, int /*trial*/) {
    std::string junk(static_cast<std::size_t>(rng.uniform(1, 512)), '\0');
    for (char& c : junk) c = static_cast<char>(rng.uniform(0, 255));
    drive(junk, rng, nullptr);  // must not crash; error status typed if any
  });
}

TEST(ServeFuzz, HttpParserSurvivesMutatedRequests) {
  int accepted = 0;
  for_each_corpus_trial([&](SplitMix64& rng, int trial) {
    const std::string& base =
        kValidRequests[static_cast<std::size_t>(trial) %
                       (sizeof(kValidRequests) / sizeof(kValidRequests[0]))];
    std::vector<HttpRequest> requests;
    if (drive(mutate(base, rng), rng, &requests)) accepted += !requests.empty();
  });
  // The mutator is gentle enough that some inputs still parse — this guards
  // against the parser degenerating into reject-everything.
  EXPECT_GT(accepted, 0);
}

TEST(ServeFuzz, HttpParserIsChunkingInvariant) {
  for_each_corpus_trial([&](SplitMix64& rng, int trial) {
    const std::string& wire =
        kValidRequests[static_cast<std::size_t>(trial) %
                       (sizeof(kValidRequests) / sizeof(kValidRequests[0]))];

    RequestParser whole{HttpLimits{}};
    whole.feed(wire);
    HttpRequest expected;
    ASSERT_EQ(whole.next_request(&expected), ParseStatus::kRequest);

    std::vector<HttpRequest> requests;
    ASSERT_TRUE(drive(wire, rng, &requests));
    ASSERT_EQ(requests.size(), 1u);
    EXPECT_EQ(requests[0].method, expected.method);
    EXPECT_EQ(requests[0].target, expected.target);
    EXPECT_EQ(requests[0].body, expected.body);
    EXPECT_EQ(requests[0].headers, expected.headers);
  });
}

const std::string kValidJson[] = {
    R"({"benchmarks":["IIR Filter","Figure 1"],"factors":[2,3],"verify":true})",
    R"([1,-2.5,3e4,"é😀",null,{"a":[{}]},false])",
    R"({"s":"line\nbreak\ttab\\slash\"quote","n":-0.125e-3})",
    // Numeric extremes: int64 boundaries and just-out-of-range literals, so
    // the mutator explores the strtoll ERANGE edge from both sides.
    R"([9223372036854775807,-9223372036854775808,9223372036854775808,
        -9223372036854775809,18446744073709551615,1e18])",
    R"({"trip_counts":[99999999999999999999],"factors":[3]})",
};

TEST(ServeFuzz, JsonParserSurvivesRandomBytes) {
  for_each_corpus_trial([&](SplitMix64& rng, int /*trial*/) {
    std::string junk(static_cast<std::size_t>(rng.uniform(1, 256)), '\0');
    for (char& c : junk) c = static_cast<char>(rng.uniform(0, 255));
    JsonError error;
    // Must not crash; whether it parses is irrelevant here.
    const auto value = parse_json(junk, &error);
    static_cast<void>(value);
  });
}

TEST(ServeFuzz, JsonParserSurvivesMutatedDocuments) {
  int accepted = 0;
  for_each_corpus_trial([&](SplitMix64& rng, int trial) {
    const std::string& base =
        kValidJson[static_cast<std::size_t>(trial) %
                   (sizeof(kValidJson) / sizeof(kValidJson[0]))];
    JsonError error;
    const auto value = parse_json(mutate(base, rng), &error);
    if (value.has_value()) {
      ++accepted;
    } else {
      EXPECT_FALSE(error.message.empty());
    }
  });
  EXPECT_GT(accepted, 0);
}

TEST(ServeFuzz, JsonIntegerRangeEdgeIsExact) {
  // int64 boundaries parse exactly; one past either boundary loses the
  // exact view but is *flagged* out-of-range rather than silently clamped
  // to LLONG_MIN/MAX (the strtoll ERANGE bug).
  const auto parsed = parse_json(
      R"([9223372036854775807,-9223372036854775808,
          9223372036854775808,-9223372036854775809])");
  ASSERT_TRUE(parsed.has_value());
  const auto& items = parsed->as_array();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].as_int(), std::optional<std::int64_t>{INT64_MAX});
  EXPECT_EQ(items[1].as_int(), std::optional<std::int64_t>{INT64_MIN});
  EXPECT_FALSE(items[0].int_out_of_range());
  EXPECT_FALSE(items[1].int_out_of_range());
  for (std::size_t i = 2; i < 4; ++i) {
    EXPECT_FALSE(items[i].as_int().has_value()) << i;
    EXPECT_TRUE(items[i].int_out_of_range()) << i;
  }
  // Non-integral literals never carry the flag, however extreme.
  const auto big_float = parse_json("[1.5e300]");
  ASSERT_TRUE(big_float.has_value());
  EXPECT_FALSE(big_float->as_array()[0].int_out_of_range());
}

TEST(ServeFuzz, OutOfRangeIntegersInQueriesAreTyped422s) {
  // End to end through the query parser: an out-of-range trip count must be
  // a 422 naming the range problem, not a crash, a clamp, or a generic
  // "not an integer".
  const char* bodies[] = {
      R"({"benchmarks":["IIR Filter"],"trip_counts":[99999999999999999999]})",
      R"({"benchmarks":["IIR Filter"],"trip_counts":[-99999999999999999999]})",
      R"({"benchmarks":["IIR Filter"],"factors":[18446744073709551616]})",
  };
  for (const char* body : bodies) {
    QueryResult rejection;
    EXPECT_FALSE(parse_query(body, &rejection).has_value()) << body;
    EXPECT_EQ(rejection.status, 422) << body;
    EXPECT_NE(rejection.error.find("out of range"), std::string::npos)
        << rejection.error;
  }
  // The boundary itself is *in* range: it must get past the integer check
  // (trip counts have no further range clamp, so this one executes — keep
  // it to a parse-only assertion via an invalid benchmark).
  QueryResult rejection;
  EXPECT_FALSE(parse_query(
                   R"({"benchmarks":["no such graph"],
                       "trip_counts":[9223372036854775807]})",
                   &rejection)
                   .has_value());
  EXPECT_EQ(rejection.status, 422);
  EXPECT_NE(rejection.error.find("unknown benchmark"), std::string::npos);
}

TEST(ServeFuzz, JsonDeepNestingNeverOverflowsTheStack) {
  for_each_corpus_trial([&](SplitMix64& rng, int /*trial*/) {
    const auto depth = static_cast<std::size_t>(rng.uniform(1, 4096));
    const bool arrays = rng.uniform(0, 1) == 0;
    std::string doc(depth, arrays ? '[' : '{');
    if (!arrays) {
      doc.clear();
      for (std::size_t i = 0; i < depth; ++i) doc += "{\"k\":";
    }
    JsonError error;
    const auto value = parse_json(doc, &error);
    // Anything past the depth limit is an error, not a recursion crash.
    if (depth > 64) {
      EXPECT_FALSE(value.has_value());
    }
  });
}

}  // namespace
}  // namespace csr::serve
