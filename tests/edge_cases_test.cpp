// Edge cases and failure-injection tests across modules: register re-setup,
// multiple decrements per trip, extreme trip counts, degenerate graphs and
// factors, and large-scale smoke runs.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "loopir/optimizer.hpp"
#include "retiming/opt.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

Statement write_a() {
  Statement s;
  s.array = "A";
  s.op_seed = op_seed_for("A");
  return s;
}

TEST(MachineEdge, ReSetupResetsTheWindow) {
  // Two consecutive windows of the same register: a second setup restarts
  // the countdown.
  LoopProgram p;
  p.n = 2;
  LoopSegment s1;
  s1.begin = s1.end = 0;
  s1.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop1;
  loop1.begin = 1;
  loop1.end = 3;
  loop1.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop1.instructions.push_back(Instruction::decrement("p1"));
  LoopSegment s2;
  s2.begin = s2.end = 0;
  s2.instructions.push_back(Instruction::setup("p1", -2));  // below window
  LoopSegment loop2;
  loop2.begin = 10;
  loop2.end = 12;
  loop2.instructions.push_back(Instruction::statement(write_a(), "p1"));
  p.segments = {s1, loop1, s2, loop2};
  const Machine m = run_program(p);
  // First loop: windows open at trips 1,2 (n = 2); third trip disabled.
  EXPECT_TRUE(m.written("A", 1));
  EXPECT_TRUE(m.written("A", 2));
  EXPECT_FALSE(m.written("A", 3));
  // Second loop: p = −2 ≤ −n, always disabled.
  EXPECT_FALSE(m.written("A", 10));
}

TEST(MachineEdge, MultipleDecrementsPerTrip) {
  LoopProgram p;
  p.n = 10;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 4));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const Machine m = run_program(p);
  // p at statement: 4, 2, 0, −2, −4 → enabled from trip 3 onward.
  EXPECT_FALSE(m.written("A", 2));
  EXPECT_TRUE(m.written("A", 3));
  EXPECT_TRUE(m.written("A", 5));
}

TEST(OptimizerEdge, MultipleDecrementsAnalyzedExactly) {
  LoopProgram p;
  p.n = 10;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 4;
  // Statement sits between the two decrements: sees 0, −2, −4, −6.
  loop.instructions.push_back(Instruction::decrement("p1"));
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  // Values at the statement: −1, −3, −5, −7 with window (−10, 0]: all
  // enabled → guard dropped.
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.guards_dropped, 1);
  const auto diffs = compare_programs(p, report.program, {"A"});
  EXPECT_TRUE(diffs.empty());
}

TEST(CodegenEdge, TripCountOneOriginal) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const Machine m = run_program(original_program(g, 1));
  EXPECT_EQ(m.total_writes("A"), 1);
}

TEST(CodegenEdge, MinimalTripCountForRetiming) {
  // n = M_r + 1 is the smallest legal trip count: steady state shrinks to a
  // single trip.
  const DataFlowGraph g = benchmarks::allpole_filter();  // M_r = 3
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = r.max_value() + 1;
  const auto diffs = compare_programs(original_program(g, n),
                                      retimed_csr_program(g, r, n), array_names(g));
  EXPECT_TRUE(diffs.empty());
  const auto expanded = compare_programs(original_program(g, n),
                                         retimed_program(g, r, n), array_names(g));
  EXPECT_TRUE(expanded.empty());
}

TEST(CodegenEdge, FactorLargerThanTripCount) {
  // f > n: the unfolded loop body covers everything in one (partial) trip.
  const DataFlowGraph g = benchmarks::figure4_example();
  const std::int64_t n = 4;
  const int f = 7;
  const auto diffs = compare_programs(original_program(g, n),
                                      unfolded_csr_program(g, f, n), array_names(g));
  EXPECT_TRUE(diffs.empty());
  // Expanded form: no full trips, everything is remainder.
  const LoopProgram expanded = unfolded_program(g, f, n);
  EXPECT_EQ(expanded.code_size(), n * original_size(g));
}

TEST(CodegenEdge, FactorOneCsrEqualsRetimedCsrShape) {
  const DataFlowGraph g = benchmarks::iir_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const LoopProgram a = retimed_csr_program(g, r, 31);
  const LoopProgram b = retimed_unfolded_csr_program(g, r, 1, 31);
  EXPECT_EQ(a.code_size(), b.code_size());
  EXPECT_EQ(a.conditional_registers(), b.conditional_registers());
  EXPECT_TRUE(compare_programs(a, b, array_names(g)).empty());
}

TEST(CodegenEdge, LargeTripCountSmoke) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = 5000;
  const Machine m = run_program(retimed_unfolded_csr_program(g, r, 4, n));
  for (const std::string& array : array_names(g)) {
    EXPECT_EQ(m.total_writes(array), n) << array;
  }
}

TEST(CodegenEdge, RetimedUnfoldedWithNoFullTrips) {
  // (n − M_r) < f: the steady-state loop vanishes and the whole execution
  // is prologue + straight-line remainder.
  const DataFlowGraph g = benchmarks::allpole_filter();  // M_r = 3
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = r.max_value() + 2;  // 2 post-retiming trips
  const int f = 7;
  const auto diffs = compare_programs(original_program(g, n),
                                      retimed_unfolded_program(g, r, f, n),
                                      array_names(g));
  EXPECT_TRUE(diffs.empty());
  const auto csr = compare_programs(original_program(g, n),
                                    retimed_unfolded_csr_program(g, r, f, n),
                                    array_names(g));
  EXPECT_TRUE(csr.empty());
}

TEST(CodegenEdge, SingleNodeGraph) {
  DataFlowGraph g("tiny");
  const NodeId a = g.add_node("A");
  g.add_edge(a, a, 1);
  const OptimalRetiming opt = minimum_period_retiming(g);
  EXPECT_EQ(opt.period, 1);
  EXPECT_EQ(opt.retiming.max_value(), 0);
  const auto diffs = compare_programs(original_program(g, 9),
                                      unfolded_csr_program(g, 2, 9), array_names(g));
  EXPECT_TRUE(diffs.empty());
}

TEST(CodegenEdge, MultiEdgeDependence) {
  // Two parallel edges with different delays: the statement reads both.
  DataFlowGraph g("multi");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  g.add_edge(a, b, 2);  // B[i] uses A[i] and A[i-2]
  g.add_edge(b, a, 1);
  const Statement s = node_statement(g, b);
  ASSERT_EQ(s.sources.size(), 2u);
  EXPECT_EQ(s.sources[0].offset, 0);
  EXPECT_EQ(s.sources[1].offset, -2);
  const Retiming r = minimum_period_retiming(g).retiming;
  const auto diffs = compare_programs(original_program(g, 15),
                                      retimed_csr_program(g, r, 15), array_names(g));
  EXPECT_TRUE(diffs.empty());
}

}  // namespace
}  // namespace csr
