// Golden-file snapshots of the batch C emitter: the SoA kernel source for
// representative (benchmark, variant, lane-set) combinations is compared
// byte-for-byte against tests/golden/*_batch.c. The snapshots pin the batch
// ABI (version 2): the CSR_W lane dimension, lane-innermost buffer macros,
// per-lane constant tables, the lockstep + masked-remainder loop split and
// the csr_* descriptor table the batched readback walks.
//
// To update the snapshots after an intentional change, run:
//
//     CSR_UPDATE_GOLDEN=1 build/tests/golden_batch_emitter_test
//
// then review `git diff tests/golden/` before committing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "codegen/batch_emitter.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "retiming/opt.hpp"

namespace csr {
namespace {

struct GoldenBatchCase {
  const char* file;  ///< file name under tests/golden/
  DataFlowGraph (*factory)();
  bool csr;  ///< retimed-CSR form instead of the original loop
  /// Ragged lane trip counts; the batch width is the list's length. Small
  /// and non-uniform, so both the lockstep loop and the masked remainder
  /// loop appear in every snapshot.
  std::vector<std::int64_t> ns;
};

const GoldenBatchCase kCases[] = {
    {"iir_retimed_csr_w4_batch.c", benchmarks::iir_filter, true, {5, 12, 9, 7}},
    {"diffeq_original_w2_batch.c", benchmarks::differential_equation_solver, false,
     {8, 13}},
    {"allpole_retimed_csr_w3_batch.c", benchmarks::allpole_filter, true, {6, 11, 6}},
    // Width 1 pins the degenerate layout: one lane must still go through
    // the CSR_W dimension, not silently collapse to the single-cell ABI.
    {"elliptic_original_w1_batch.c", benchmarks::elliptic_filter, false, {9}},
};

std::string render(const GoldenBatchCase& c) {
  const DataFlowGraph g = c.factory();
  std::vector<LoopProgram> lanes;
  for (const std::int64_t n : c.ns) {
    lanes.push_back(c.csr ? retimed_csr_program(
                                g, minimum_period_retiming(g).retiming, n)
                          : original_program(g, n));
  }
  return to_batch_c_source(lanes);
}

std::filesystem::path golden_path(const GoldenBatchCase& c) {
  return std::filesystem::path(CSR_GOLDEN_DIR) / c.file;
}

bool update_mode() {
  const char* flag = std::getenv("CSR_UPDATE_GOLDEN");
  return flag != nullptr && *flag != '\0' && std::string(flag) != "0";
}

std::string golden_case_name(const ::testing::TestParamInfo<GoldenBatchCase>& info) {
  std::string name = info.param.file;
  name.resize(name.size() - 2);  // drop ".c"
  return name;
}

class GoldenBatchEmitterTest : public ::testing::TestWithParam<GoldenBatchCase> {};

TEST_P(GoldenBatchEmitterTest, MatchesSnapshot) {
  const GoldenBatchCase& c = GetParam();
  const std::string actual = render(c);
  const std::filesystem::path path = golden_path(c);

  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << path << " missing — regenerate with CSR_UPDATE_GOLDEN=1 "
                  << "build/tests/golden_batch_emitter_test";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "emitted batch C drifted from " << path
      << "\nIf the change is intentional: CSR_UPDATE_GOLDEN=1 "
      << "build/tests/golden_batch_emitter_test, then review "
      << "`git diff tests/golden/`.";
}

INSTANTIATE_TEST_SUITE_P(Snapshots, GoldenBatchEmitterTest,
                         ::testing::ValuesIn(kCases), golden_case_name);

TEST(GoldenBatchEmitter, EmissionIsDeterministic) {
  for (const GoldenBatchCase& c : kCases) {
    EXPECT_EQ(render(c), render(c)) << c.file;
  }
}

}  // namespace
}  // namespace csr
