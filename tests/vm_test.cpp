// Tests for the VM: conditional-register guard semantics (the 0 ≥ p > −LC
// window of Section 3.1), memory behaviour, write accounting and the
// equivalence-checking helpers.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "loopir/program.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"
#include "vm/equivalence.hpp"
#include "vm/machine.hpp"

namespace csr {
namespace {

Statement write_a(std::int64_t offset = 0) {
  Statement s;
  s.array = "A";
  s.offset = offset;
  s.op_seed = op_seed_for("A");
  return s;
}

LoopProgram single_loop(std::int64_t n, std::vector<Instruction> body,
                        std::int64_t begin, std::int64_t end, std::int64_t step = 1) {
  LoopProgram p;
  p.n = n;
  LoopSegment loop;
  loop.begin = begin;
  loop.end = end;
  loop.step = step;
  loop.instructions = std::move(body);
  p.segments.push_back(std::move(loop));
  return p;
}

TEST(Machine, BoundaryValuesAreDeterministicAndDistinct) {
  EXPECT_EQ(boundary_value("A", -1), boundary_value("A", -1));
  EXPECT_NE(boundary_value("A", -1), boundary_value("A", -2));
  EXPECT_NE(boundary_value("A", -1), boundary_value("B", -1));
}

TEST(Machine, StatementValueDependsOnEverything) {
  const std::vector<std::uint64_t> ops = {1, 2};
  const std::uint64_t base = statement_value(7, 3, ops);
  EXPECT_EQ(base, statement_value(7, 3, ops));
  EXPECT_NE(base, statement_value(8, 3, ops));
  EXPECT_NE(base, statement_value(7, 4, ops));
  EXPECT_NE(base, statement_value(7, 3, {2, 1}));  // operand order matters
  EXPECT_NE(base, statement_value(7, 3, {1}));
}

TEST(Machine, RunsUnguardedLoop) {
  const Machine m = run_program(single_loop(5, {Instruction::statement(write_a())}, 1, 5));
  for (std::int64_t i = 1; i <= 5; ++i) {
    EXPECT_TRUE(m.written("A", i));
    EXPECT_EQ(m.write_count("A", i), 1);
  }
  EXPECT_FALSE(m.written("A", 0));
  EXPECT_EQ(m.total_writes("A"), 5);
  EXPECT_EQ(m.executed_statements(), 5);
  EXPECT_EQ(m.disabled_statements(), 0);
}

TEST(Machine, ReadsBoundaryForUnwrittenCells) {
  const Machine m = run_program(single_loop(1, {Instruction::statement(write_a())}, 1, 1));
  EXPECT_EQ(m.read("A", 99), boundary_value("A", 99));
  EXPECT_EQ(m.read("Z", 0), boundary_value("Z", 0));
}

TEST(Machine, GuardWindowLowerEdge) {
  // p starts at 2 and decrements once per trip: statement enabled from the
  // third trip (p ≤ 0), i.e. i = 3.
  LoopProgram p;
  p.n = 5;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 2));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const Machine m = run_program(p);
  EXPECT_FALSE(m.written("A", 1));
  EXPECT_FALSE(m.written("A", 2));
  EXPECT_TRUE(m.written("A", 3));
  EXPECT_TRUE(m.written("A", 5));
  EXPECT_EQ(m.disabled_statements(), 2);
}

TEST(Machine, GuardWindowUpperEdgeStopsAfterNExecutions) {
  // p starts at 0 with LC = 3; trips 1..5 but only the first 3 execute
  // (p > −3 fails afterwards).
  LoopProgram p;
  p.n = 3;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const Machine m = run_program(p);
  EXPECT_EQ(m.total_writes("A"), 3);
  EXPECT_TRUE(m.written("A", 3));
  EXPECT_FALSE(m.written("A", 4));
}

TEST(Machine, DecrementAmountRespected) {
  // Decrement by 2 per trip with p0 = 3: p = 3,1,-1,… → first enabled trip
  // is the third (i = 3).
  LoopProgram p;
  p.n = 10;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 3));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 4;
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1", 2));
  p.segments = {setup, loop};
  const Machine m = run_program(p);
  EXPECT_FALSE(m.written("A", 2));
  EXPECT_TRUE(m.written("A", 3));
  EXPECT_TRUE(m.written("A", 4));
}

TEST(Machine, GuardBeforeSetupThrows) {
  const LoopProgram p =
      single_loop(3, {Instruction::statement(write_a(), "p1")}, 1, 3);
  EXPECT_THROW(run_program(p), InvalidArgument);
}

TEST(Machine, StatementsReadThroughSources) {
  // B[i] = f(A[i−1]): with only A[0] boundary and A[1..n] written in the
  // same loop before B, values must chain deterministically.
  Statement write_b;
  write_b.array = "B";
  write_b.op_seed = op_seed_for("B");
  write_b.sources = {ArrayRef{"A", -1}};
  const LoopProgram p = single_loop(
      3, {Instruction::statement(write_a()), Instruction::statement(write_b)}, 1, 3);
  const Machine m = run_program(p);
  EXPECT_EQ(m.read("B", 1),
            statement_value(op_seed_for("B"), 1, {boundary_value("A", 0)}));
  EXPECT_EQ(m.read("B", 3), statement_value(op_seed_for("B"), 3, {m.read("A", 2)}));
}

TEST(Machine, StepsSkipIndices) {
  const Machine m =
      run_program(single_loop(9, {Instruction::statement(write_a())}, 1, 7, 3));
  EXPECT_TRUE(m.written("A", 1));
  EXPECT_TRUE(m.written("A", 4));
  EXPECT_TRUE(m.written("A", 7));
  EXPECT_EQ(m.total_writes("A"), 3);
}

TEST(Machine, IssuedCountsDisabledToo) {
  LoopProgram p;
  p.n = 1;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 5));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 2;
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const Machine m = run_program(p);
  EXPECT_EQ(m.issued_instructions(), 1 + 2 * 2);
  EXPECT_EQ(m.executed_statements(), 0);
  EXPECT_EQ(m.disabled_statements(), 2);
}

TEST(Equivalence, DiffDetectsDivergence) {
  const LoopProgram a = single_loop(3, {Instruction::statement(write_a())}, 1, 3);
  const LoopProgram b = single_loop(3, {Instruction::statement(write_a(1))}, 1, 3);
  const auto diffs = compare_programs(a, b, {"A"});
  EXPECT_FALSE(diffs.empty());
}

TEST(Equivalence, IdenticalProgramsMatch) {
  const LoopProgram a = single_loop(4, {Instruction::statement(write_a())}, 1, 4);
  EXPECT_TRUE(compare_programs(a, a, {"A"}).empty());
}

TEST(Equivalence, WriteDisciplineFlagsDoubleWrites) {
  const LoopProgram p = single_loop(
      3, {Instruction::statement(write_a()), Instruction::statement(write_a())}, 1, 3);
  const auto problems = check_write_discipline(run_program(p), {"A"}, 3);
  EXPECT_FALSE(problems.empty());
}

TEST(Equivalence, WriteDisciplineFlagsOutOfRangeWrites) {
  const LoopProgram p = single_loop(3, {Instruction::statement(write_a())}, 1, 4);
  const auto problems = check_write_discipline(run_program(p), {"A"}, 3);
  EXPECT_FALSE(problems.empty());
}

TEST(Equivalence, WriteDisciplineFlagsMissingIterations) {
  const LoopProgram p = single_loop(5, {Instruction::statement(write_a())}, 1, 4);
  const auto problems = check_write_discipline(run_program(p), {"A"}, 5);
  EXPECT_FALSE(problems.empty());
}

TEST(Equivalence, CleanProgramPassesDiscipline) {
  const LoopProgram p = single_loop(6, {Instruction::statement(write_a())}, 1, 6);
  EXPECT_TRUE(check_write_discipline(run_program(p), {"A"}, 6).empty());
}

// --- guard-window edge cases, exercised in both engines ---------------------

constexpr ExecMode kBothModes[] = {ExecMode::kFast, ExecMode::kReference};

TEST(Machine, GuardWindowExactBoundaries) {
  // LC = n = 2. Setup p = 0, decrement by 2 per trip: p = 0 on the first
  // trip (enabled: 0 ≥ 0 > −2) and p = −2 = −LC on the second (disabled —
  // the window is strictly above −LC).
  for (const ExecMode mode : kBothModes) {
    LoopProgram p;
    p.n = 2;
    LoopSegment setup;
    setup.begin = setup.end = 0;
    setup.instructions.push_back(Instruction::setup("p1", 0));
    LoopSegment loop;
    loop.begin = 1;
    loop.end = 2;
    loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
    loop.instructions.push_back(Instruction::decrement("p1", 2));
    p.segments = {setup, loop};
    const Machine m = run_program(p, mode);
    EXPECT_TRUE(m.written("A", 1));
    EXPECT_FALSE(m.written("A", 2));
    EXPECT_EQ(m.executed_statements(), 1);
    EXPECT_EQ(m.disabled_statements(), 1);
  }
}

TEST(Machine, DecrementPastLowerBoundStaysDisabled) {
  // p = 0, −2, −4, −6, −8, −10 over n = 6 trips; the window 0 ≥ p > −6
  // admits the first three, and once p falls past −LC it never re-opens.
  for (const ExecMode mode : kBothModes) {
    LoopProgram p;
    p.n = 6;
    LoopSegment setup;
    setup.begin = setup.end = 0;
    setup.instructions.push_back(Instruction::setup("p1", 0));
    LoopSegment loop;
    loop.begin = 1;
    loop.end = 6;
    loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
    loop.instructions.push_back(Instruction::decrement("p1", 2));
    p.segments = {setup, loop};
    const Machine m = run_program(p, mode);
    for (std::int64_t i = 1; i <= 3; ++i) EXPECT_TRUE(m.written("A", i)) << i;
    for (std::int64_t i = 4; i <= 6; ++i) EXPECT_FALSE(m.written("A", i)) << i;
    EXPECT_EQ(m.disabled_statements(), 3);
  }
}

TEST(Machine, ResetupOfLiveRegisterRestartsWindow) {
  // A register may be re-initialized by a later straight-line segment; the
  // guard then follows the new window, not the exhausted old one.
  for (const ExecMode mode : kBothModes) {
    LoopProgram p;
    p.n = 6;
    LoopSegment setup1;
    setup1.begin = setup1.end = 0;
    setup1.instructions.push_back(Instruction::setup("p1", 1));
    LoopSegment loop1;
    loop1.begin = 1;
    loop1.end = 3;
    loop1.instructions.push_back(Instruction::statement(write_a(), "p1"));
    loop1.instructions.push_back(Instruction::decrement("p1"));
    LoopSegment setup2;
    setup2.begin = setup2.end = 0;
    setup2.instructions.push_back(Instruction::setup("p1", 0));
    LoopSegment loop2;
    loop2.begin = 4;
    loop2.end = 6;
    loop2.instructions.push_back(Instruction::statement(write_a(), "p1"));
    loop2.instructions.push_back(Instruction::decrement("p1"));
    p.segments = {setup1, loop1, setup2, loop2};
    const Machine m = run_program(p, mode);
    // Loop 1: p = 1 (disabled), 0, −1. Loop 2 after re-setup: p = 0, −1, −2.
    EXPECT_FALSE(m.written("A", 1));
    for (std::int64_t i = 2; i <= 6; ++i) EXPECT_TRUE(m.written("A", i)) << i;
    EXPECT_EQ(m.executed_statements(), 5);
    EXPECT_EQ(m.disabled_statements(), 1);
  }
}

TEST(Machine, GuardBeforeSetupThrowsInBothModes) {
  // The register is set up only in a later segment; the program is rejected
  // before either engine runs, identically in both modes.
  for (const ExecMode mode : kBothModes) {
    LoopProgram p;
    p.n = 2;
    LoopSegment loop;
    loop.begin = 1;
    loop.end = 2;
    loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
    LoopSegment late_setup;
    late_setup.begin = late_setup.end = 0;
    late_setup.instructions.push_back(Instruction::setup("p1", 0));
    p.segments = {loop, late_setup};
    EXPECT_THROW(run_program(p, mode), InvalidArgument);
  }
}

// --- Theorems 4.1/4.2: CSR programs execute each node exactly n times -------

TEST(Machine, CsrProgramsExecuteEachNodeExactlyNTimes) {
  const std::int64_t n = 21;
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    const LoopProgram p = retimed_csr_program(g, opt.retiming, n);
    const auto arrays = array_names(g);
    for (const ExecMode mode : kBothModes) {
      const Machine m = run_program(p, mode);
      EXPECT_EQ(m.executed_statements(),
                static_cast<std::int64_t>(g.node_count()) * n)
          << info.name;
      EXPECT_TRUE(check_write_discipline(m, arrays, n).empty()) << info.name;
    }
  }
}

// --- the fast engine must be indistinguishable from the reference one -------

TEST(Machine, FastAndReferenceEnginesAgree) {
  const std::int64_t n = 21;
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    const auto arrays = array_names(g);
    const std::vector<LoopProgram> programs = {
        original_program(g, n),
        retimed_program(g, opt.retiming, n),
        retimed_csr_program(g, opt.retiming, n),
        retimed_unfolded_csr_program(g, opt.retiming, 2, n),
    };
    for (const LoopProgram& p : programs) {
      const Machine fast = run_program(p, ExecMode::kFast);
      const Machine ref = run_program(p, ExecMode::kReference);
      EXPECT_TRUE(diff_observable_state(ref, fast, arrays, n).empty()) << info.name;
      EXPECT_EQ(fast.issued_instructions(), ref.issued_instructions()) << info.name;
      EXPECT_EQ(fast.executed_statements(), ref.executed_statements()) << info.name;
      EXPECT_EQ(fast.disabled_statements(), ref.disabled_statements()) << info.name;
      for (const std::string& a : arrays) {
        EXPECT_EQ(fast.total_writes(a), ref.total_writes(a)) << info.name;
        for (std::int64_t i = 0; i <= n + 1; ++i) {
          EXPECT_EQ(fast.read(a, i), ref.read(a, i)) << info.name;
          EXPECT_EQ(fast.write_count(a, i), ref.write_count(a, i)) << info.name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace csr
