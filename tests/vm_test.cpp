// Tests for the VM: conditional-register guard semantics (the 0 ≥ p > −LC
// window of Section 3.1), memory behaviour, write accounting and the
// equivalence-checking helpers.

#include <gtest/gtest.h>

#include "loopir/program.hpp"
#include "support/error.hpp"
#include "vm/equivalence.hpp"
#include "vm/machine.hpp"

namespace csr {
namespace {

Statement write_a(std::int64_t offset = 0) {
  Statement s;
  s.array = "A";
  s.offset = offset;
  s.op_seed = op_seed_for("A");
  return s;
}

LoopProgram single_loop(std::int64_t n, std::vector<Instruction> body,
                        std::int64_t begin, std::int64_t end, std::int64_t step = 1) {
  LoopProgram p;
  p.n = n;
  LoopSegment loop;
  loop.begin = begin;
  loop.end = end;
  loop.step = step;
  loop.instructions = std::move(body);
  p.segments.push_back(std::move(loop));
  return p;
}

TEST(Machine, BoundaryValuesAreDeterministicAndDistinct) {
  EXPECT_EQ(boundary_value("A", -1), boundary_value("A", -1));
  EXPECT_NE(boundary_value("A", -1), boundary_value("A", -2));
  EXPECT_NE(boundary_value("A", -1), boundary_value("B", -1));
}

TEST(Machine, StatementValueDependsOnEverything) {
  const std::vector<std::uint64_t> ops = {1, 2};
  const std::uint64_t base = statement_value(7, 3, ops);
  EXPECT_EQ(base, statement_value(7, 3, ops));
  EXPECT_NE(base, statement_value(8, 3, ops));
  EXPECT_NE(base, statement_value(7, 4, ops));
  EXPECT_NE(base, statement_value(7, 3, {2, 1}));  // operand order matters
  EXPECT_NE(base, statement_value(7, 3, {1}));
}

TEST(Machine, RunsUnguardedLoop) {
  const Machine m = run_program(single_loop(5, {Instruction::statement(write_a())}, 1, 5));
  for (std::int64_t i = 1; i <= 5; ++i) {
    EXPECT_TRUE(m.written("A", i));
    EXPECT_EQ(m.write_count("A", i), 1);
  }
  EXPECT_FALSE(m.written("A", 0));
  EXPECT_EQ(m.total_writes("A"), 5);
  EXPECT_EQ(m.executed_statements(), 5);
  EXPECT_EQ(m.disabled_statements(), 0);
}

TEST(Machine, ReadsBoundaryForUnwrittenCells) {
  const Machine m = run_program(single_loop(1, {Instruction::statement(write_a())}, 1, 1));
  EXPECT_EQ(m.read("A", 99), boundary_value("A", 99));
  EXPECT_EQ(m.read("Z", 0), boundary_value("Z", 0));
}

TEST(Machine, GuardWindowLowerEdge) {
  // p starts at 2 and decrements once per trip: statement enabled from the
  // third trip (p ≤ 0), i.e. i = 3.
  LoopProgram p;
  p.n = 5;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 2));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const Machine m = run_program(p);
  EXPECT_FALSE(m.written("A", 1));
  EXPECT_FALSE(m.written("A", 2));
  EXPECT_TRUE(m.written("A", 3));
  EXPECT_TRUE(m.written("A", 5));
  EXPECT_EQ(m.disabled_statements(), 2);
}

TEST(Machine, GuardWindowUpperEdgeStopsAfterNExecutions) {
  // p starts at 0 with LC = 3; trips 1..5 but only the first 3 execute
  // (p > −3 fails afterwards).
  LoopProgram p;
  p.n = 3;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const Machine m = run_program(p);
  EXPECT_EQ(m.total_writes("A"), 3);
  EXPECT_TRUE(m.written("A", 3));
  EXPECT_FALSE(m.written("A", 4));
}

TEST(Machine, DecrementAmountRespected) {
  // Decrement by 2 per trip with p0 = 3: p = 3,1,-1,… → first enabled trip
  // is the third (i = 3).
  LoopProgram p;
  p.n = 10;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 3));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 4;
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1", 2));
  p.segments = {setup, loop};
  const Machine m = run_program(p);
  EXPECT_FALSE(m.written("A", 2));
  EXPECT_TRUE(m.written("A", 3));
  EXPECT_TRUE(m.written("A", 4));
}

TEST(Machine, GuardBeforeSetupThrows) {
  const LoopProgram p =
      single_loop(3, {Instruction::statement(write_a(), "p1")}, 1, 3);
  EXPECT_THROW(run_program(p), InvalidArgument);
}

TEST(Machine, StatementsReadThroughSources) {
  // B[i] = f(A[i−1]): with only A[0] boundary and A[1..n] written in the
  // same loop before B, values must chain deterministically.
  Statement write_b;
  write_b.array = "B";
  write_b.op_seed = op_seed_for("B");
  write_b.sources = {ArrayRef{"A", -1}};
  const LoopProgram p = single_loop(
      3, {Instruction::statement(write_a()), Instruction::statement(write_b)}, 1, 3);
  const Machine m = run_program(p);
  EXPECT_EQ(m.read("B", 1),
            statement_value(op_seed_for("B"), 1, {boundary_value("A", 0)}));
  EXPECT_EQ(m.read("B", 3), statement_value(op_seed_for("B"), 3, {m.read("A", 2)}));
}

TEST(Machine, StepsSkipIndices) {
  const Machine m =
      run_program(single_loop(9, {Instruction::statement(write_a())}, 1, 7, 3));
  EXPECT_TRUE(m.written("A", 1));
  EXPECT_TRUE(m.written("A", 4));
  EXPECT_TRUE(m.written("A", 7));
  EXPECT_EQ(m.total_writes("A"), 3);
}

TEST(Machine, IssuedCountsDisabledToo) {
  LoopProgram p;
  p.n = 1;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 5));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 2;
  loop.instructions.push_back(Instruction::statement(write_a(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const Machine m = run_program(p);
  EXPECT_EQ(m.issued_instructions(), 1 + 2 * 2);
  EXPECT_EQ(m.executed_statements(), 0);
  EXPECT_EQ(m.disabled_statements(), 2);
}

TEST(Equivalence, DiffDetectsDivergence) {
  const LoopProgram a = single_loop(3, {Instruction::statement(write_a())}, 1, 3);
  const LoopProgram b = single_loop(3, {Instruction::statement(write_a(1))}, 1, 3);
  const auto diffs = compare_programs(a, b, {"A"});
  EXPECT_FALSE(diffs.empty());
}

TEST(Equivalence, IdenticalProgramsMatch) {
  const LoopProgram a = single_loop(4, {Instruction::statement(write_a())}, 1, 4);
  EXPECT_TRUE(compare_programs(a, a, {"A"}).empty());
}

TEST(Equivalence, WriteDisciplineFlagsDoubleWrites) {
  const LoopProgram p = single_loop(
      3, {Instruction::statement(write_a()), Instruction::statement(write_a())}, 1, 3);
  const auto problems = check_write_discipline(run_program(p), {"A"}, 3);
  EXPECT_FALSE(problems.empty());
}

TEST(Equivalence, WriteDisciplineFlagsOutOfRangeWrites) {
  const LoopProgram p = single_loop(3, {Instruction::statement(write_a())}, 1, 4);
  const auto problems = check_write_discipline(run_program(p), {"A"}, 3);
  EXPECT_FALSE(problems.empty());
}

TEST(Equivalence, WriteDisciplineFlagsMissingIterations) {
  const LoopProgram p = single_loop(5, {Instruction::statement(write_a())}, 1, 4);
  const auto problems = check_write_discipline(run_program(p), {"A"}, 5);
  EXPECT_FALSE(problems.empty());
}

TEST(Equivalence, CleanProgramPassesDiscipline) {
  const LoopProgram p = single_loop(6, {Instruction::statement(write_a())}, 1, 6);
  EXPECT_TRUE(check_write_discipline(run_program(p), {"A"}, 6).empty());
}

}  // namespace
}  // namespace csr
