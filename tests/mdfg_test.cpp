// Unit tests for the multidimensional data-flow graph layer (src/mdfg):
// lexicographic legality, text round-trips, DOT export (including the shared
// dot_escape helper), the bundled nested benchmark family, the random
// generator's invariants, and the row-major linearization.

#include <gtest/gtest.h>

#include <sstream>

#include "mdfg/builders.hpp"
#include "mdfg/dot.hpp"
#include "mdfg/graph.hpp"
#include "mdfg/io.hpp"
#include "mdfg/random.hpp"
#include "dfg/dot.hpp"
#include "dfg/graph.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/text.hpp"

namespace csr {
namespace {

TEST(MdDelayTest, LexicographicPredicates) {
  EXPECT_TRUE(lex_nonneg(MdDelay{0, 0}));
  EXPECT_TRUE(lex_nonneg(MdDelay{0, 3}));
  EXPECT_TRUE(lex_nonneg(MdDelay{1, -5}));
  EXPECT_FALSE(lex_nonneg(MdDelay{0, -1}));
  EXPECT_FALSE(lex_nonneg(MdDelay{-1, 2}));

  EXPECT_FALSE(lex_positive(MdDelay{0, 0}));
  EXPECT_TRUE(lex_positive(MdDelay{0, 1}));
  EXPECT_TRUE(lex_positive(MdDelay{1, -5}));
  EXPECT_FALSE(lex_positive(MdDelay{0, -1}));
}

TEST(MdGraphTest, BuildsAndQueries) {
  MdDataFlowGraph g("pair");
  const NodeId a = g.add_node("A", 2);
  const NodeId b = g.add_node("B");
  const EdgeId e = g.add_edge(a, b, 0, 1);
  g.add_edge(b, a, 1, -1);

  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge(e).delay, (MdDelay{0, 1}));
  EXPECT_EQ(g.node(a).time, 2);
  EXPECT_EQ(g.total_time(), 3);
  EXPECT_FALSE(g.unit_time());
  EXPECT_EQ(g.find_node("B"), b);
  EXPECT_FALSE(g.find_node("C").has_value());
  EXPECT_TRUE(g.is_legal());
}

TEST(MdGraphTest, RejectsLexNegativeDelays) {
  MdDataFlowGraph g("bad");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  EXPECT_THROW(g.add_edge(a, b, 0, -1), InvalidArgument);
  EXPECT_THROW(g.add_edge(a, b, -1, 3), InvalidArgument);
}

TEST(MdGraphTest, RejectsZeroDelaySelfLoop) {
  MdDataFlowGraph g("loop");
  const NodeId a = g.add_node("A");
  EXPECT_THROW(g.add_edge(a, a, 0, 0), InvalidArgument);
  EXPECT_NO_THROW(g.add_edge(a, a, 1, 0));
}

TEST(MdGraphTest, ValidateFlagsAllZeroCycle) {
  MdDataFlowGraph g("cycle");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0, 0);
  g.add_edge(b, a, 0, 0);
  EXPECT_FALSE(g.is_legal());

  // Breaking the cycle with a column delay legalizes it.
  MdDataFlowGraph ok("cycle");
  const NodeId c = ok.add_node("A");
  const NodeId d = ok.add_node("B");
  ok.add_edge(c, d, 0, 0);
  ok.add_edge(d, c, 0, 1);
  EXPECT_TRUE(ok.is_legal());
}

TEST(MdIoTest, RoundTripsThroughText) {
  const MdDataFlowGraph g = mdfg::jacobi5();
  const MdDataFlowGraph back = parse_md_text(to_text(g));
  EXPECT_EQ(back.name(), g.name());
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(back.node(v).name, g.node(v).name);
    EXPECT_EQ(back.node(v).time, g.node(v).time);
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(back.edge(e).from, g.edge(e).from);
    EXPECT_EQ(back.edge(e).to, g.edge(e).to);
    EXPECT_EQ(back.edge(e).delay, g.edge(e).delay);
  }
  // And the serialized form is a fixpoint.
  EXPECT_EQ(to_text(back), to_text(g));
}

TEST(MdIoTest, ParseErrorsCarryLineNumbers) {
  EXPECT_THROW(parse_md_text("dfg notmd\n"), ParseError);
  EXPECT_THROW(parse_md_text("mdfg g\nnode A\n"), ParseError);
  EXPECT_THROW(parse_md_text("mdfg g\nnode A 1\nedge A B 0 0\n"), ParseError);
  EXPECT_THROW(parse_md_text("mdfg g\nnode A 1\nedge A A 0\n"), ParseError);
  // Lex-negative delays are structural, not syntactic.
  EXPECT_THROW(parse_md_text("mdfg g\nnode A 1\nnode B 1\nedge A B 0 -1\n"),
               InvalidArgument);
}

TEST(MdDotTest, RendersVectorDelays) {
  MdDataFlowGraph g("d");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 1, -1);
  g.add_edge(b, a, 0, 2);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("(1,-1)D"), std::string::npos);
  EXPECT_NE(dot.find("(0,2)D"), std::string::npos);
}

// Both exporters go through support::dot_escape, so hostile node names
// produce parseable DOT in the 1-D and 2-D renderers alike.
TEST(DotEscapeTest, EscapesQuotesBackslashesAndNewlines) {
  EXPECT_EQ(dot_escape("plain"), "plain");
  EXPECT_EQ(dot_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(dot_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(dot_escape("a\nb"), "a\\nb");
}

TEST(DotEscapeTest, BothExportersEscapeNodeNames) {
  DataFlowGraph g1("quo\"ted");
  const NodeId a1 = g1.add_node("x\"y");
  const NodeId b1 = g1.add_node("plain");
  g1.add_edge(a1, b1, 1);
  const std::string dot1 = to_dot(g1);
  EXPECT_NE(dot1.find("x\\\"y"), std::string::npos);
  EXPECT_NE(dot1.find("digraph \"quo\\\"ted\""), std::string::npos);

  MdDataFlowGraph g2("quo\"ted");
  const NodeId a2 = g2.add_node("x\"y");
  const NodeId b2 = g2.add_node("plain");
  g2.add_edge(a2, b2, 1, 0);
  const std::string dot2 = to_dot(g2);
  EXPECT_NE(dot2.find("x\\\"y"), std::string::npos);
  EXPECT_NE(dot2.find("digraph \"quo\\\"ted\""), std::string::npos);
}

TEST(MdBuildersTest, RegistryNamesTheFourBenchmarks) {
  const auto& family = mdfg::md_benchmarks();
  ASSERT_EQ(family.size(), 4u);
  EXPECT_EQ(family[0].name, "conv3x3");
  EXPECT_EQ(family[1].name, "jacobi5");
  EXPECT_EQ(family[2].name, "iir2d");
  EXPECT_EQ(family[3].name, "tline2d");
  for (const auto& info : family) {
    const MdDataFlowGraph g = info.factory();
    EXPECT_EQ(g.name(), info.name);
    EXPECT_TRUE(g.is_legal()) << info.name;
    EXPECT_NE(mdfg::find_md_benchmark(info.name), nullptr);
  }
  EXPECT_EQ(mdfg::find_md_benchmark("iir"), nullptr);
  EXPECT_EQ(mdfg::find_md_benchmark("nope"), nullptr);
}

TEST(MdRandomTest, GeneratesLegalCyclicGraphs) {
  SplitMix64 rng(7);
  for (int i = 0; i < 50; ++i) {
    const MdDataFlowGraph g = mdfg::random_mdfg(rng);
    EXPECT_TRUE(g.is_legal());
    EXPECT_GE(g.node_count(), 3u);
    EXPECT_LE(g.node_count(), 10u);
    // Every backward (cycle-closing) edge is row-carried by construction,
    // so a legal linearization exists at a large-enough inner trip count.
    EXPECT_NO_THROW(linearized(g, 100));
  }
}

TEST(MdLinearizeTest, FoldsDelayVectorsRowMajor) {
  MdDataFlowGraph g("lin");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0, 2);
  g.add_edge(b, a, 1, -3);
  const DataFlowGraph lin = linearized(g, 8);
  ASSERT_EQ(lin.edge_count(), 2u);
  EXPECT_EQ(lin.edge(0).delay, 2);
  EXPECT_EQ(lin.edge(1).delay, 8 - 3);
  // cols too small for the negative column component → negative flat delay.
  EXPECT_THROW(linearized(g, 2), InvalidArgument);
}

}  // namespace
}  // namespace csr
