// Tests for iterative modulo scheduling: II lower bounds, schedule
// validity, achieved IIs on the benchmarks, the stage-induced retiming and
// its integration with the CSR code generator.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "dfg/random.hpp"
#include "schedule/modulo.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

TEST(ModuloBounds, ResourceMinIi) {
  const DataFlowGraph g = benchmarks::iir_filter();  // 4 mults, 4 adds
  EXPECT_EQ(resource_min_ii(g, ResourceModel::adders_and_multipliers(1, 1)), 4);
  EXPECT_EQ(resource_min_ii(g, ResourceModel::adders_and_multipliers(2, 2)), 2);
  EXPECT_EQ(resource_min_ii(g, ResourceModel::uniform(1)), 8);
  EXPECT_EQ(resource_min_ii(g, ResourceModel::uniform(8)), 1);
}

TEST(ModuloBounds, ResourceMinIiRespectsMaxNodeTime) {
  const DataFlowGraph g = benchmarks::chao_sha_example();  // t up to 9
  EXPECT_GE(resource_min_ii(g, ResourceModel::uniform(30)), 9);
}

TEST(ModuloBounds, RecurrenceMinIiIsCeilOfBound) {
  EXPECT_EQ(recurrence_min_ii(benchmarks::iir_filter()), 3);
  EXPECT_EQ(recurrence_min_ii(benchmarks::elliptic_filter()), 3);  // ⌈8/3⌉
  EXPECT_EQ(recurrence_min_ii(benchmarks::chao_sha_example()), 14);  // ⌈27/2⌉
  DataFlowGraph acyclic;
  acyclic.add_node("A");
  EXPECT_EQ(recurrence_min_ii(acyclic), 0);
}

TEST(ModuloSchedule, AchievesLowerBoundWithAmpleResources) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const ResourceModel model = ResourceModel::uniform(static_cast<int>(g.node_count()));
    const auto ms = modulo_schedule(g, model);
    ASSERT_TRUE(ms.has_value()) << info.name;
    EXPECT_EQ(ms->initiation_interval, recurrence_min_ii(g)) << info.name;
    EXPECT_TRUE(validate_modulo_schedule(g, model, *ms).empty()) << info.name;
  }
}

TEST(ModuloSchedule, RespectsResourceBoundUnderPressure) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
  const auto ms = modulo_schedule(g, model);
  ASSERT_TRUE(ms.has_value());
  EXPECT_GE(ms->initiation_interval, resource_min_ii(g, model));
  EXPECT_TRUE(validate_modulo_schedule(g, model, *ms).empty());
}

TEST(ModuloSchedule, SingleUnitSerializes) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const auto ms = modulo_schedule(g, ResourceModel::uniform(1));
  ASSERT_TRUE(ms.has_value());
  EXPECT_EQ(ms->initiation_interval, 3);  // 3 unit-time ops on one unit
}

TEST(ModuloSchedule, NonUnitTimesScheduleWithoutStraddling) {
  const DataFlowGraph g = benchmarks::chao_sha_example();
  const ResourceModel model = ResourceModel::uniform(2);
  const auto ms = modulo_schedule(g, model);
  ASSERT_TRUE(ms.has_value());
  EXPECT_TRUE(validate_modulo_schedule(g, model, *ms).empty());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_LE(ms->times.start(v) % ms->initiation_interval + g.node(v).time,
              ms->initiation_interval);
  }
}

TEST(ModuloSchedule, MaxIiExhaustionReturnsNullopt) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  ModuloScheduleOptions options;
  options.max_ii = 1;  // below both bounds
  EXPECT_FALSE(modulo_schedule(g, ResourceModel::uniform(1), options).has_value());
}

TEST(ModuloSchedule, ValidatorCatchesViolations) {
  const DataFlowGraph g = benchmarks::figure1_example();
  const ResourceModel model = ResourceModel::uniform(2);
  ModuloSchedule ms;
  ms.initiation_interval = 1;
  ms.times = StaticSchedule(g.node_count());  // A and B both at time 0
  EXPECT_FALSE(validate_modulo_schedule(g, model, ms).empty());
}

TEST(ModuloRetiming, InducedRetimingIsLegalAndMeetsIi) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
    const auto ms = modulo_schedule(g, model);
    ASSERT_TRUE(ms.has_value()) << info.name;
    const Retiming r = retiming_from_modulo(g, *ms);
    EXPECT_TRUE(is_legal_retiming(g, r)) << info.name;
    EXPECT_TRUE(r.is_normalized()) << info.name;
    EXPECT_LE(cycle_period(apply_retiming(g, r)), ms->initiation_interval) << info.name;
    EXPECT_EQ(r.max_value(), ms->stages - 1) << info.name;
  }
}

TEST(ModuloRetiming, FeedsCsrCodegen) {
  // The full VLIW pipeline: modulo-schedule under resources, take the stage
  // retiming, emit kernel-only CSR code, and check semantics in the VM.
  const DataFlowGraph g = benchmarks::differential_equation_solver();
  const ResourceModel model = ResourceModel::adders_and_multipliers(1, 1);
  const auto ms = modulo_schedule(g, model);
  ASSERT_TRUE(ms.has_value());
  const Retiming r = retiming_from_modulo(g, *ms);
  const std::int64_t n = 25;
  ASSERT_GT(n, r.max_value());
  const auto diffs = compare_programs(original_program(g, n),
                                      retimed_csr_program(g, r, n), array_names(g));
  EXPECT_TRUE(diffs.empty());
}

TEST(ModuloSchedule, RandomGraphsValidAcrossResourceMixes) {
  SplitMix64 rng(31337);
  RandomDfgOptions options;
  options.max_nodes = 9;
  options.max_time = 3;
  for (int trial = 0; trial < 40; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    for (const int k : {1, 2, 4}) {
      const ResourceModel model = ResourceModel::uniform(k);
      const auto ms = modulo_schedule(g, model);
      ASSERT_TRUE(ms.has_value()) << trial;
      EXPECT_TRUE(validate_modulo_schedule(g, model, *ms).empty()) << trial;
      EXPECT_GE(ms->initiation_interval,
                std::max(resource_min_ii(g, model), recurrence_min_ii(g)))
          << trial;
      const Retiming r = retiming_from_modulo(g, *ms);
      EXPECT_TRUE(is_legal_retiming(g, r)) << trial;
      EXPECT_LE(cycle_period(apply_retiming(g, r)), ms->initiation_interval) << trial;
    }
  }
}

}  // namespace
}  // namespace csr
