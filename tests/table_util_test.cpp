// Tests for the bench-side table helpers — in particular the percentage
// formatter, which must survive a degenerate zero-size baseline (regression:
// pct(0, x) used to divide by zero and print "nan"/"inf").

#include <gtest/gtest.h>

#include "table_util.hpp"

namespace csr::bench {
namespace {

TEST(Pct, FormatsReduction) {
  EXPECT_EQ(pct(100, 60), "40.0");
  EXPECT_EQ(pct(200, 150), "25.0");
  EXPECT_EQ(pct(3, 2), "33.3");
}

TEST(Pct, NegativeReductionIsGrowth) {
  EXPECT_EQ(pct(100, 125), "-25.0");
}

TEST(Pct, ZeroBaselineReportsZeroNotNan) {
  // before == 0 has nothing to reduce; must not divide by zero.
  EXPECT_EQ(pct(0, 0), "0.0");
  EXPECT_EQ(pct(0, 7), "0.0");
}

TEST(Pct, FullReduction) {
  EXPECT_EQ(pct(50, 0), "100.0");
}

}  // namespace
}  // namespace csr::bench
