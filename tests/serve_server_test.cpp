// End-to-end tests for the HTTP server (src/serve/server.hpp) over real
// loopback sockets: routing, cache headers, byte-identity with the offline
// export, admission control (connection and compute-pool bounds), and
// graceful drain via SIGTERM. The reactor-specific conformance suite
// (pipelining discipline, partial reads, envelope shapes) lives in
// serve_reactor_test.cpp.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>

#include "driver/config.hpp"
#include "driver/export.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace csr::serve {
namespace {

/// A minimal blocking HTTP/1.1 client for loopback tests.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_raw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool request(const std::string& method, const std::string& target,
               const std::string& body = "") {
    std::string wire = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
    if (!body.empty()) {
      wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    wire += "\r\n" + body;
    return send_raw(wire);
  }

  /// Reads one full response. Returns the status code, or -1 on EOF/parse
  /// trouble. Headers and body land in the accessors.
  int read_response() {
    char chunk[64 * 1024];
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return -1;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    headers_ = buffer_.substr(0, header_end);
    std::string lower = headers_;
    for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    const std::size_t cl = lower.find("content-length:");
    if (cl == std::string::npos) return -1;
    const std::size_t length =
        std::strtoull(headers_.c_str() + cl + 15, nullptr, 10);
    const std::size_t total = header_end + 4 + length;
    while (buffer_.size() < total) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return -1;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    body_ = buffer_.substr(header_end + 4, length);
    buffer_.erase(0, total);
    return std::atoi(headers_.c_str() + 9);
  }

  [[nodiscard]] const std::string& headers() const { return headers_; }
  [[nodiscard]] const std::string& body() const { return body_; }

 private:
  int fd_ = -1;
  std::string buffer_;
  std::string headers_;
  std::string body_;
};

constexpr const char* kSmallQuery =
    R"({"benchmarks":["IIR Filter"],"transforms":["retimed_csr"]})";

ServerConfig quick_config() {
  ServerConfig config;
  config.port(0)  // ephemeral: tests must never collide on a fixed port
      .event_threads(2)
      .compute_threads(2)
      .poll_interval_ms(20);  // keep drain/stop latencies test-sized
  return config;
}

TEST(Server, RoutesCoreEndpointsOverLoopback) {
  const ServerConfig config = quick_config();
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // One keep-alive connection exercises every endpoint in sequence.
  ASSERT_TRUE(client.request("GET", "/healthz"));
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_EQ(client.body(), "ok\n");

  ASSERT_TRUE(client.request("GET", "/v1/benchmarks"));
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_NE(client.body().find("IIR Filter"), std::string::npos);
  // The vocabulary advertises the export columns straight off the schema,
  // including the optimizer's measured-size column.
  EXPECT_NE(client.body().find("\"columns\""), std::string::npos);
  EXPECT_NE(client.body().find("\"measured_size\""), std::string::npos);

  ASSERT_TRUE(client.request("GET", "/v1/version"));
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_NE(client.body().find("\"journal_payload_version\""), std::string::npos);

  ASSERT_TRUE(client.request("POST", "/v1/sweep", kSmallQuery));
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_NE(client.headers().find("X-Csr-Cache: miss"), std::string::npos);
  const std::string cold_body = client.body();

  ASSERT_TRUE(client.request("POST", "/v1/sweep", kSmallQuery));
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_NE(client.headers().find("X-Csr-Cache: hit"), std::string::npos);
  EXPECT_EQ(client.body(), cold_body);

  // Acceptance: served bytes == offline run_sweep export of the same cells.
  driver::SweepConfig config2;
  config2.grid().benchmarks = {"IIR Filter"};
  config2.grid().transforms = {driver::Transform::kRetimedCsr};
  const driver::SweepRun run = driver::run_sweep(config2);
  EXPECT_EQ(cold_body, driver::to_json(run.results));

  ASSERT_TRUE(client.request("GET", "/metrics"));
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_NE(client.body().find("csr_serve_requests_total"), std::string::npos);
  EXPECT_NE(client.body().find("csr_serve_queries_total"), std::string::npos);

  ASSERT_TRUE(client.request("GET", "/no/such/endpoint"));
  EXPECT_EQ(client.read_response(), 404);

  ASSERT_TRUE(client.request("GET", "/v1/sweep"));
  EXPECT_EQ(client.read_response(), 405);

  ASSERT_TRUE(client.request("POST", "/v1/sweep", "{malformed"));
  EXPECT_EQ(client.read_response(), 400);

  EXPECT_GE(server.requests_served(), 9u);
  server.stop();
}

TEST(Server, ParseErrorAnswersThenCloses) {
  const ServerConfig config = quick_config();
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw("GET / HTTP/2.0\r\n\r\n"));
  EXPECT_EQ(client.read_response(), 505);
  EXPECT_NE(client.headers().find("Connection: close"), std::string::npos);
  EXPECT_EQ(client.read_response(), -1);  // server closed the connection
  server.stop();
}

TEST(Server, PipelinedRequestsAnswerInOrder) {
  const ServerConfig config = quick_config();
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw(
      "GET /healthz HTTP/1.1\r\n\r\n"
      "GET /v1/benchmarks HTTP/1.1\r\n\r\n"
      "GET /nope HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_EQ(client.body(), "ok\n");
  EXPECT_EQ(client.read_response(), 200);
  EXPECT_NE(client.body().find("IIR Filter"), std::string::npos);
  EXPECT_EQ(client.read_response(), 404);
  server.stop();
}

TEST(Server, ComputeBoundShedsRequestsWith503RetryAfter) {
  // One compute thread and an in-flight ceiling of one: with the pool held
  // busy, the next sweep request is shed at dispatch with a 503 envelope —
  // the connection stays open and usable.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  ServerConfig config = quick_config();
  config.compute_threads(1).max_inflight(1).retry_after(7).compute_hook([&] {
    entered.store(true);
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient busy(server.port());
  ASSERT_TRUE(busy.connected());
  ASSERT_TRUE(busy.request("POST", "/v1/sweep", kSmallQuery));
  for (int i = 0; i < 2000 && !entered.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(entered.load()) << "pool never picked up the blocked request";

  TestClient shed(server.port());
  ASSERT_TRUE(shed.connected());
  ASSERT_TRUE(shed.request("POST", "/v1/sweep", kSmallQuery));
  EXPECT_EQ(shed.read_response(), 503);
  EXPECT_NE(shed.headers().find("Retry-After: 7"), std::string::npos);
  EXPECT_NE(shed.body().find("\"code\": \"overloaded\""), std::string::npos);
  // Shedding is per-request: the same connection still serves cheap GETs.
  ASSERT_TRUE(shed.request("GET", "/healthz"));
  EXPECT_EQ(shed.read_response(), 200);

  release.store(true);
  EXPECT_EQ(busy.read_response(), 200);
  server.stop();
}

TEST(Server, ConnectionLimitShedsAtTheDoor) {
  ServerConfig config = quick_config();
  config.max_connections(1).retry_after(3);
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  TestClient first(server.port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.request("GET", "/healthz"));
  ASSERT_EQ(first.read_response(), 200);  // ensures the server accepted it

  TestClient second(server.port());
  ASSERT_TRUE(second.connected());
  EXPECT_EQ(second.read_response(), 503);  // rejected without a request
  EXPECT_NE(second.headers().find("Retry-After: 3"), std::string::npos);
  EXPECT_NE(second.body().find("\"code\": \"overloaded\""), std::string::npos);
  EXPECT_GE(server.connections_rejected(), 1u);
  server.stop();
}

TEST(Server, SigtermDrainsGracefully) {
  // The drain contract: in-flight requests complete; everything new gets an
  // immediate 503; the daemon's wait_until_drained() wakes up.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  ServerConfig config = quick_config();
  config.compute_hook([&] {
    entered.store(true);
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  SweepService service(config);
  Server server(service, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_TRUE(Server::install_signal_handlers(&server));

  TestClient inflight(server.port());
  ASSERT_TRUE(inflight.connected());
  ASSERT_TRUE(inflight.request("POST", "/v1/sweep", kSmallQuery));
  for (int i = 0; i < 2000 && !entered.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(entered.load());

  // SIGTERM → handler → self-pipe → signal thread → request_drain().
  ASSERT_EQ(::raise(SIGTERM), 0);
  for (int i = 0; i < 2000 && !server.draining(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.draining());

  // New arrivals are shed with 503 while the old request is still in flight.
  TestClient late(server.port());
  ASSERT_TRUE(late.connected());
  EXPECT_EQ(late.read_response(), 503);
  EXPECT_NE(late.body().find("draining"), std::string::npos);

  // The in-flight request completes — and is told the connection is done.
  release.store(true);
  EXPECT_EQ(inflight.read_response(), 200);
  EXPECT_NE(inflight.headers().find("Connection: close"), std::string::npos);

  server.wait_until_drained();  // must not block: drain already requested
  server.stop();

  // Restore default handlers so a later abort in this process behaves.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

TEST(Server, StopIsIdempotentAndRestartable) {
  const ServerConfig config = quick_config();
  SweepService service(config);
  {
    Server server(service, config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    server.stop();
    server.stop();  // second stop is a no-op
  }
  // A second server over the same service works (destructor released the
  // port; ephemeral ports cannot collide).
  Server again(service, quick_config());
  std::string error;
  ASSERT_TRUE(again.start(&error)) << error;
  TestClient client(again.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.request("GET", "/healthz"));
  EXPECT_EQ(client.read_response(), 200);
  again.stop();
}

}  // namespace
}  // namespace csr::serve
