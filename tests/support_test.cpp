// Unit tests for the support layer: exact rationals, deterministic RNG and
// string utilities.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/rational.hpp"
#include "support/rng.hpp"
#include "support/text.hpp"

namespace csr {
namespace {

TEST(Rational, DefaultsToZero) {
  const Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, NormalizesSignAndGcd) {
  const Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroNumeratorCanonicalizesDenominator) {
  const Rational r(0, 17);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), InvalidArgument);
}

TEST(Rational, Arithmetic) {
  const Rational half(1, 2);
  const Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), InvalidArgument);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(8, 3).to_string(), "8/3");
  EXPECT_EQ(Rational(6, 3).to_string(), "2");
  std::ostringstream os;
  os << Rational(-5, 10);
  EXPECT_EQ(os.str(), "-1/2");
}

TEST(Rational, CheckedMulOverflowThrows) {
  EXPECT_THROW(checked_mul(std::int64_t{1} << 40, std::int64_t{1} << 40), OverflowError);
  EXPECT_EQ(checked_mul(1 << 20, 1 << 20), std::int64_t{1} << 40);
}

TEST(Rational, CheckedAddOverflowThrows) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(checked_add(big, 1), OverflowError);
  EXPECT_EQ(checked_add(big - 1, 1), big);
}

TEST(SimplestRational, FindsIntegerWhenPresent) {
  EXPECT_EQ(simplest_rational_in(Rational(5, 2), Rational(7, 2)), Rational(3));
}

TEST(SimplestRational, FindsSmallestDenominator) {
  // (1/3, 1/2] — simplest is 1/2.
  EXPECT_EQ(simplest_rational_in(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
  // A narrow interval around 8/3.
  EXPECT_EQ(simplest_rational_in(Rational(529, 199), Rational(541, 202)), Rational(8, 3));
}

TEST(SimplestRational, RequiresNonEmptyInterval) {
  EXPECT_THROW(simplest_rational_in(Rational(1, 2), Rational(1, 2)), InvalidArgument);
}

TEST(SplitMix64, DeterministicStream) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, UniformStaysInRange) {
  SplitMix64 rng(7);
  std::set<std::int64_t> seen;
  for (int k = 0; k < 1000; ++k) {
    const std::int64_t v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(SplitMix64, Uniform01InRange) {
  SplitMix64 rng(9);
  for (int k = 0; k < 1000; ++k) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SplitMix64, BernoulliExtremes) {
  SplitMix64 rng(11);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Text, Split) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Text, SplitWs) {
  EXPECT_EQ(split_ws("  a  b\tc "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(starts_with("edge A B 1", "edge"));
  EXPECT_FALSE(starts_with("ed", "edge"));
}

TEST(Text, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

}  // namespace
}  // namespace csr
