// Tests for the loop-IR guard optimizer: exact guard-window analysis,
// removal of dead guards/statements/registers, and semantic preservation on
// every generated program shape.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "dfg/random.hpp"
#include "loopir/optimizer.hpp"
#include "loopir/passes.hpp"
#include "loopir/pipeline.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

Statement write_to(const std::string& array) {
  Statement s;
  s.array = array;
  s.op_seed = op_seed_for(array);
  return s;
}

TEST(Optimizer, DropsAlwaysEnabledGuard) {
  LoopProgram p;
  p.n = 5;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  // p1 runs 0, −1, ..., −4: always in (−5, 0] — guard is redundant.
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.guards_dropped, 1);
  EXPECT_EQ(report.statements_removed, 0);
  EXPECT_EQ(report.registers_removed, 2);  // setup + decrement retired
  EXPECT_EQ(report.program.code_size(), 1);
  EXPECT_TRUE(report.program.conditional_registers().empty());
}

TEST(Optimizer, RemovesNeverEnabledStatement) {
  LoopProgram p;
  p.n = 5;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 100));  // window never opens
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.statements_removed, 1);
  EXPECT_EQ(report.program.code_size(), 0);
  EXPECT_TRUE(report.program.segments.empty());
}

TEST(Optimizer, KeepsMixedGuard) {
  LoopProgram p;
  p.n = 3;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 2));  // opens at trip 3
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 6;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.guards_dropped, 0);
  EXPECT_EQ(report.statements_removed, 0);
  EXPECT_EQ(report.program.code_size(), p.code_size());
}

TEST(Optimizer, DetectsWindowJumpedByLargeDecrement) {
  // p: 3, −3, −9 with n = 2 → window (−2, 0] never hit.
  LoopProgram p;
  p.n = 2;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 3));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 3;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1", 6));
  p.segments = {setup, loop};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.statements_removed, 1);
}

TEST(Optimizer, ConstantRegisterWithoutDecrement) {
  LoopProgram p;
  p.n = 4;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 4;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  p.segments = {setup, loop};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.guards_dropped, 1);  // 0 is inside (−4, 0] forever
}

TEST(Optimizer, TracksValuesAcrossSegments) {
  // Two loop segments share a register; the second segment's entry value
  // reflects the first's decrements.
  LoopProgram p;
  p.n = 100;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 2));
  LoopSegment first;   // two trips: p = 2, 1 — never enabled here
  first.begin = 1;
  first.end = 2;
  first.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  first.instructions.push_back(Instruction::decrement("p1"));
  LoopSegment second;  // entry p = 0: always enabled for 5 trips
  second.begin = 3;
  second.end = 7;
  second.instructions.push_back(Instruction::statement(write_to("B"), "p1"));
  second.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, first, second};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.statements_removed, 1);  // the A statement
  EXPECT_EQ(report.guards_dropped, 1);      // the B statement
}

TEST(Optimizer, RejectsInvalidPrograms) {
  LoopProgram p;
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 2;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  p.segments = {loop};
  EXPECT_THROW(optimize_program(p), InvalidArgument);
}

TEST(Optimizer, UnfoldedCsrWithExactTripCountLosesAllOverhead) {
  // When f | n, every copy of the unfolded CSR loop is always enabled: the
  // optimizer recovers the expanded form's size exactly.
  const DataFlowGraph g = benchmarks::figure4_example();
  const LoopProgram csr = unfolded_csr_program(g, 3, 12);
  const OptimizationReport report = optimize_program(csr);
  EXPECT_EQ(report.program.code_size(), 9);  // f·L, no registers left
  EXPECT_TRUE(report.program.conditional_registers().empty());
  const auto diffs =
      compare_programs(original_program(g, 12), report.program, array_names(g));
  EXPECT_TRUE(diffs.empty());
}

TEST(Optimizer, RetimedCsrKeepsItsGuards) {
  // The retimed CSR loop genuinely needs its guards (fill and drain), so
  // nothing should be dropped.
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  const LoopProgram csr = retimed_csr_program(g, r, 30);
  const OptimizationReport report = optimize_program(csr);
  EXPECT_EQ(report.guards_dropped, 0);
  EXPECT_EQ(report.statements_removed, 0);
  EXPECT_EQ(report.program.code_size(), csr.code_size());
}

class OptimizerEquivalenceTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(OptimizerEquivalenceTest, PreservesSemanticsOnAllShapes) {
  const std::int64_t n = GetParam();
  for (const auto& info : benchmarks::all_graphs()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    std::vector<LoopProgram> programs;
    programs.push_back(unfolded_csr_program(g, 3, n));
    programs.push_back(unfolded_csr_program(g, 4, n));
    if (n > r.max_value()) {
      programs.push_back(retimed_csr_program(g, r, n));
      programs.push_back(retimed_unfolded_csr_program(g, r, 3, n));
    }
    for (const LoopProgram& p : programs) {
      const OptimizationReport report = optimize_program(p);
      EXPECT_LE(report.program.code_size(), p.code_size());
      const auto diffs = compare_programs(p, report.program, array_names(g));
      EXPECT_TRUE(diffs.empty())
          << info.name << " n=" << n << ": " << (diffs.empty() ? "" : diffs.front());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TripCounts, OptimizerEquivalenceTest,
                         ::testing::Values(12, 17, 20, 24));

TEST(Optimizer, RandomProgramsStayEquivalent) {
  SplitMix64 rng(5150);
  RandomDfgOptions options;
  options.max_nodes = 8;
  for (int trial = 0; trial < 30; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const std::int64_t n = 15 + trial % 5;
    const LoopProgram p = unfolded_csr_program(g, 2 + trial % 3, n);
    const OptimizationReport report = optimize_program(p);
    const auto diffs = compare_programs(p, report.program, array_names(g));
    EXPECT_TRUE(diffs.empty()) << trial;
  }
}

// --- individual passes -------------------------------------------------------

TEST(Passes, FoldAbsorbsDecrementIntoSetup) {
  // `setup p1 0; dec p1 2` in a straight-line segment folds to `setup p1 −2`
  // when nothing observes p1 in between.
  LoopProgram p;
  p.n = 5;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  setup.instructions.push_back(Instruction::decrement("p1", 2));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 8;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};

  LoopProgram folded = p;
  const PassChanges changes = fold_pass(folded);
  EXPECT_EQ(changes.setups_folded, 1);
  EXPECT_EQ(folded.code_size(), p.code_size() - 1);
  ASSERT_EQ(folded.segments[0].instructions.size(), 1u);
  EXPECT_EQ(folded.segments[0].instructions[0].value, -2);
  EXPECT_TRUE(folded.validate().empty());
  EXPECT_TRUE(compare_programs(p, folded, {"A"}).empty());
}

TEST(Passes, FoldStopsAtObservingGuard) {
  // A guard reading p1 between the setup and the decrement pins both.
  LoopProgram p;
  p.n = 5;
  LoopSegment seg;
  seg.begin = seg.end = 0;
  seg.instructions.push_back(Instruction::setup("p1", 0));
  seg.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  seg.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {seg};
  LoopProgram folded = p;
  EXPECT_EQ(fold_pass(folded).total(), 0);
  EXPECT_EQ(folded.code_size(), p.code_size());
}

TEST(Passes, CondenseCoalescesDecrementsAcrossUnguardedCopies) {
  // `dec p1; <unguarded stmt>; dec p1` merges into one `dec p1 2`; the
  // guarded statement after the pair still sees the same prefix sum.
  LoopProgram p;
  p.n = 6;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 1));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 6;
  loop.step = 2;
  loop.instructions.push_back(Instruction::statement(write_to("A")));
  loop.instructions.push_back(Instruction::decrement("p1"));
  loop.instructions.push_back(Instruction::statement(write_to("B")));
  loop.instructions.push_back(Instruction::decrement("p1"));
  loop.instructions.push_back(Instruction::statement(write_to("C"), "p1"));
  p.segments = {setup, loop};

  LoopProgram condensed = p;
  const PassChanges changes = condense_pass(condensed);
  EXPECT_EQ(changes.decrements_coalesced, 1);
  EXPECT_EQ(condensed.code_size(), p.code_size() - 1);
  EXPECT_TRUE(condensed.validate().empty());
  EXPECT_TRUE(compare_programs(p, condensed, {"A", "B", "C"}).empty());
}

TEST(Passes, CondenseRespectsGuardBarriers) {
  // A guarded statement between two decrements of its register observes the
  // intermediate value: the pair must not merge.
  LoopProgram p;
  p.n = 6;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 1));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 6;
  loop.step = 2;
  loop.instructions.push_back(Instruction::decrement("p1"));
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  LoopProgram condensed = p;
  EXPECT_EQ(condense_pass(condensed).decrements_coalesced, 0);
  EXPECT_EQ(condensed.code_size(), p.code_size());
}

TEST(Passes, CondenseDropsZeroTripSegments) {
  LoopProgram p;
  p.n = 4;
  LoopSegment live;
  live.begin = 1;
  live.end = 4;
  live.instructions.push_back(Instruction::statement(write_to("A")));
  LoopSegment nop;  // begin > end: zero trips, nothing ever executes
  nop.begin = 5;
  nop.end = 4;
  nop.instructions.push_back(Instruction::statement(write_to("A")));
  p.segments = {live, nop};
  const PassChanges changes = condense_pass(p);
  EXPECT_EQ(changes.segments_removed, 1);
  EXPECT_EQ(changes.statements_removed, 1);
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_TRUE(p.validate().empty());
}

TEST(Passes, DceRemovesTrailingDecrement) {
  // After the last guard use of p1, its decrement is unobservable — the old
  // global-liveness pass kept it, position-aware dce retires it.
  LoopProgram p;
  p.n = 4;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 4;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  LoopSegment tail;
  tail.begin = tail.end = 5;
  tail.instructions.push_back(Instruction::decrement("p1"));
  tail.instructions.push_back(Instruction::statement(write_to("B")));
  p.segments = {setup, loop, tail};

  LoopProgram out = p;
  const PassChanges changes = dce_pass(out);
  EXPECT_EQ(changes.register_ops_removed, 1);  // only the trailing decrement
  EXPECT_TRUE(out.validate().empty());
  EXPECT_TRUE(compare_programs(p, out, {"A", "B"}).empty());
}

TEST(Passes, DceKeepsOpsObservedByLaterSegments) {
  // The decrement between the two guarded loops changes what the second one
  // sees: live, even though its own segment has no guard after it.
  LoopProgram p;
  p.n = 100;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 1));
  LoopSegment bump;
  bump.begin = bump.end = 1;
  bump.instructions.push_back(Instruction::decrement("p1"));
  LoopSegment loop;
  loop.begin = 2;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  p.segments = {setup, bump, loop};
  LoopProgram out = p;
  EXPECT_EQ(dce_pass(out).total(), 0);
  EXPECT_EQ(out.code_size(), p.code_size());
}

// --- the fixpoint pipeline ---------------------------------------------------

/// Variant programs for one benchmark graph, mirroring the sweep's codegen
/// axes (factors 2..4 over the unfolded forms; retimed forms when legal).
std::vector<LoopProgram> variant_programs(const DataFlowGraph& g, std::int64_t n) {
  const Retiming r = minimum_period_retiming(g).retiming;
  std::vector<LoopProgram> programs;
  for (const int f : {2, 3, 4}) {
    programs.push_back(unfolded_csr_program(g, f, n));
    if (n > r.max_value()) {
      programs.push_back(retimed_unfolded_csr_program(g, r, f, n));
    }
  }
  if (n > r.max_value()) {
    programs.push_back(retimed_csr_program(g, r, n));
  }
  return programs;
}

TEST(Pipeline, ReachesFixpointWithinBoundOnAllBenchmarkVariants) {
  // The acceptance property: on every paper benchmark × codegen variant the
  // pipeline converges (a full round reports zero changes) well inside the
  // default iteration bound, idempotently, and never grows the program.
  for (const auto& info : benchmarks::all_graphs()) {
    const DataFlowGraph g = info.factory();
    for (const std::int64_t n : {12, 101}) {
      for (const LoopProgram& p : variant_programs(g, n)) {
        SCOPED_TRACE(::testing::Message() << info.name << " n=" << n);
        const PipelineResult result = optimize_pipeline(p);
        EXPECT_TRUE(result.converged);
        EXPECT_LE(result.iterations, PipelineOptions{}.max_iterations);
        EXPECT_LE(result.size_after, result.size_before);
        EXPECT_EQ(result.size_before, p.code_size());
        EXPECT_TRUE(result.program.validate().empty());

        // Sizes are monotone pass by pass, not just end to end.
        std::int64_t size = result.size_before;
        for (const PassReport& report : result.passes) {
          EXPECT_LE(report.size_after, size) << report.pass;
          size = report.size_after;
        }

        // Idempotence: a second run is a single no-change round.
        const PipelineResult again = optimize_pipeline(result.program);
        EXPECT_TRUE(again.converged);
        EXPECT_EQ(again.iterations, 1);
        EXPECT_EQ(again.totals.total(), 0);
        EXPECT_EQ(again.size_after, result.size_after);
      }
    }
  }
}

TEST(Pipeline, IterationBoundStopsANonConvergedRun) {
  // unfolded CSR at n=101, f=3 needs two rounds (one changing, one clean);
  // max_iterations=1 must stop early and say so instead of looping.
  const DataFlowGraph g = benchmarks::figure4_example();
  const LoopProgram p = unfolded_csr_program(g, 3, 101);
  PipelineOptions tight;
  tight.max_iterations = 1;
  const PipelineResult result = optimize_pipeline(p, tight);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 1);
  EXPECT_GT(result.totals.total(), 0);
}

TEST(Pipeline, BeatsClosedFormOnUnfoldedCsrWithRedundantGuards) {
  // The headline result the repo predicted but never measured: for n=101,
  // f=3 the first two copies' guards are provably redundant (their windows
  // cover every trip), so the window pass drops them and the two decrements
  // between the now-unguarded copies coalesce — one instruction below the
  // closed-form CSR optimum, with identical semantics.
  for (const auto& info : benchmarks::all_graphs()) {
    SCOPED_TRACE(info.name);
    const DataFlowGraph g = info.factory();
    const LoopProgram p = unfolded_csr_program(g, 3, 101);
    const PipelineResult result = optimize_pipeline(p);
    EXPECT_EQ(result.size_after, p.code_size() - 1);
    // The first two of the three copies lose their guards — one per guarded
    // statement, i.e. two per node of the graph.
    EXPECT_EQ(result.totals.guards_dropped,
              2 * static_cast<std::int64_t>(g.node_count()));
    EXPECT_EQ(result.totals.decrements_coalesced, 1);
    EXPECT_TRUE(compare_programs(p, result.program, array_names(g)).empty());
  }
}

TEST(Pipeline, SnapshotsCaptureEveryChangingPass) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const LoopProgram p = unfolded_csr_program(g, 3, 12);
  PipelineOptions options;
  options.capture_snapshots = true;
  const PipelineResult result = optimize_pipeline(p, options);
  ASSERT_FALSE(result.snapshots.empty());
  EXPECT_EQ(result.snapshots.front().label, "input");
  // One snapshot per changing pass, plus the input.
  std::int64_t changing_passes = 0;
  for (const PassReport& report : result.passes) {
    if (report.changes.total() > 0) ++changing_passes;
  }
  EXPECT_EQ(static_cast<std::int64_t>(result.snapshots.size()), changing_passes + 1);
}

TEST(Pipeline, RandomProgramsConvergeIdempotentlyAndStayEquivalent) {
  // ≥100 random DFGs through the full pipeline: convergence within the
  // bound, idempotence, monotone size and unchanged semantics.
  SplitMix64 rng(0x0F1B0A7Cull);
  RandomDfgOptions options;
  options.max_nodes = 8;
  for (int trial = 0; trial < 100; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    const DataFlowGraph g = random_dfg(rng, options);
    const std::int64_t n = 11 + trial % 23;
    const LoopProgram p = unfolded_csr_program(g, 2 + trial % 4, n);
    const PipelineResult result = optimize_pipeline(p);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.iterations, PipelineOptions{}.max_iterations);
    EXPECT_LE(result.size_after, result.size_before);
    EXPECT_TRUE(result.program.validate().empty());
    EXPECT_TRUE(compare_programs(p, result.program, array_names(g)).empty());

    const PipelineResult again = optimize_pipeline(result.program);
    EXPECT_EQ(again.totals.total(), 0);
    EXPECT_EQ(again.iterations, 1);
  }
}

}  // namespace
}  // namespace csr
