// Tests for the loop-IR guard optimizer: exact guard-window analysis,
// removal of dead guards/statements/registers, and semantic preservation on
// every generated program shape.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "dfg/random.hpp"
#include "loopir/optimizer.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

Statement write_to(const std::string& array) {
  Statement s;
  s.array = array;
  s.op_seed = op_seed_for(array);
  return s;
}

TEST(Optimizer, DropsAlwaysEnabledGuard) {
  LoopProgram p;
  p.n = 5;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  // p1 runs 0, −1, ..., −4: always in (−5, 0] — guard is redundant.
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.guards_dropped, 1);
  EXPECT_EQ(report.statements_removed, 0);
  EXPECT_EQ(report.registers_removed, 2);  // setup + decrement retired
  EXPECT_EQ(report.program.code_size(), 1);
  EXPECT_TRUE(report.program.conditional_registers().empty());
}

TEST(Optimizer, RemovesNeverEnabledStatement) {
  LoopProgram p;
  p.n = 5;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 100));  // window never opens
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.statements_removed, 1);
  EXPECT_EQ(report.program.code_size(), 0);
  EXPECT_TRUE(report.program.segments.empty());
}

TEST(Optimizer, KeepsMixedGuard) {
  LoopProgram p;
  p.n = 3;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 2));  // opens at trip 3
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 6;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.guards_dropped, 0);
  EXPECT_EQ(report.statements_removed, 0);
  EXPECT_EQ(report.program.code_size(), p.code_size());
}

TEST(Optimizer, DetectsWindowJumpedByLargeDecrement) {
  // p: 3, −3, −9 with n = 2 → window (−2, 0] never hit.
  LoopProgram p;
  p.n = 2;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 3));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 3;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1", 6));
  p.segments = {setup, loop};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.statements_removed, 1);
}

TEST(Optimizer, ConstantRegisterWithoutDecrement) {
  LoopProgram p;
  p.n = 4;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 4;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  p.segments = {setup, loop};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.guards_dropped, 1);  // 0 is inside (−4, 0] forever
}

TEST(Optimizer, TracksValuesAcrossSegments) {
  // Two loop segments share a register; the second segment's entry value
  // reflects the first's decrements.
  LoopProgram p;
  p.n = 100;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 2));
  LoopSegment first;   // two trips: p = 2, 1 — never enabled here
  first.begin = 1;
  first.end = 2;
  first.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  first.instructions.push_back(Instruction::decrement("p1"));
  LoopSegment second;  // entry p = 0: always enabled for 5 trips
  second.begin = 3;
  second.end = 7;
  second.instructions.push_back(Instruction::statement(write_to("B"), "p1"));
  second.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, first, second};
  const OptimizationReport report = optimize_program(p);
  EXPECT_EQ(report.statements_removed, 1);  // the A statement
  EXPECT_EQ(report.guards_dropped, 1);      // the B statement
}

TEST(Optimizer, RejectsInvalidPrograms) {
  LoopProgram p;
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 2;
  loop.instructions.push_back(Instruction::statement(write_to("A"), "p1"));
  p.segments = {loop};
  EXPECT_THROW(optimize_program(p), InvalidArgument);
}

TEST(Optimizer, UnfoldedCsrWithExactTripCountLosesAllOverhead) {
  // When f | n, every copy of the unfolded CSR loop is always enabled: the
  // optimizer recovers the expanded form's size exactly.
  const DataFlowGraph g = benchmarks::figure4_example();
  const LoopProgram csr = unfolded_csr_program(g, 3, 12);
  const OptimizationReport report = optimize_program(csr);
  EXPECT_EQ(report.program.code_size(), 9);  // f·L, no registers left
  EXPECT_TRUE(report.program.conditional_registers().empty());
  const auto diffs =
      compare_programs(original_program(g, 12), report.program, array_names(g));
  EXPECT_TRUE(diffs.empty());
}

TEST(Optimizer, RetimedCsrKeepsItsGuards) {
  // The retimed CSR loop genuinely needs its guards (fill and drain), so
  // nothing should be dropped.
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  const LoopProgram csr = retimed_csr_program(g, r, 30);
  const OptimizationReport report = optimize_program(csr);
  EXPECT_EQ(report.guards_dropped, 0);
  EXPECT_EQ(report.statements_removed, 0);
  EXPECT_EQ(report.program.code_size(), csr.code_size());
}

class OptimizerEquivalenceTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(OptimizerEquivalenceTest, PreservesSemanticsOnAllShapes) {
  const std::int64_t n = GetParam();
  for (const auto& info : benchmarks::all_graphs()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    std::vector<LoopProgram> programs;
    programs.push_back(unfolded_csr_program(g, 3, n));
    programs.push_back(unfolded_csr_program(g, 4, n));
    if (n > r.max_value()) {
      programs.push_back(retimed_csr_program(g, r, n));
      programs.push_back(retimed_unfolded_csr_program(g, r, 3, n));
    }
    for (const LoopProgram& p : programs) {
      const OptimizationReport report = optimize_program(p);
      EXPECT_LE(report.program.code_size(), p.code_size());
      const auto diffs = compare_programs(p, report.program, array_names(g));
      EXPECT_TRUE(diffs.empty())
          << info.name << " n=" << n << ": " << (diffs.empty() ? "" : diffs.front());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TripCounts, OptimizerEquivalenceTest,
                         ::testing::Values(12, 17, 20, 24));

TEST(Optimizer, RandomProgramsStayEquivalent) {
  SplitMix64 rng(5150);
  RandomDfgOptions options;
  options.max_nodes = 8;
  for (int trial = 0; trial < 30; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const std::int64_t n = 15 + trial % 5;
    const LoopProgram p = unfolded_csr_program(g, 2 + trial % 3, n);
    const OptimizationReport report = optimize_program(p);
    const auto diffs = compare_programs(p, report.program, array_names(g));
    EXPECT_TRUE(diffs.empty()) << trial;
  }
}

}  // namespace
}  // namespace csr
