// Tests for cross-request cell batching (src/serve/coalesce.hpp): the
// deterministic hammer that proves distinct concurrent requests share one
// batch kernel run, byte-identity of coalesced serving against sequential
// serving, per-lane degradation, and the deadline-minimum rule.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "driver/cell_exec.hpp"
#include "driver/config.hpp"
#include "driver/export.hpp"
#include "serve/coalesce.hpp"
#include "serve/config.hpp"
#include "serve/service.hpp"

namespace csr::serve {
namespace {

driver::SweepCell cell_for(std::int64_t n) {
  driver::SweepCell cell;
  cell.benchmark = "IIR Filter";
  cell.transform = driver::Transform::kRetimedCsr;
  cell.n = n;
  return cell;
}

std::string sweep_body(std::int64_t n) {
  return R"({"benchmarks":["IIR Filter"],"transforms":["retimed_csr"],)"
         R"("trip_counts":[)" +
         std::to_string(n) + "]}";
}

// --- the coalescer itself ----------------------------------------------------

TEST(CellCoalescer, DistinctSubmissionsShareOneBatch) {
  // Four threads, four distinct cells of the same batch shape (only the trip
  // count differs). The batch_hook holds the runner until every lane is in
  // the buckets, so exactly one cross-request batch is collected — the win
  // single-flight cannot see, made deterministic.
  constexpr std::size_t kLanes = 4;
  CellCoalescer* coalescer_ptr = nullptr;
  std::atomic<bool> staged{false};
  CellCoalescer coalescer(8, [&] {
    while (!staged.load(std::memory_order_acquire) ||
           coalescer_ptr->pending_lanes() < kLanes) {
      std::this_thread::yield();
    }
  });
  coalescer_ptr = &coalescer;

  driver::SweepOptions options;
  std::vector<driver::PreparedCell> prepared;
  prepared.reserve(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    prepared.push_back(driver::prepare_cell(cell_for(101 + static_cast<std::int64_t>(i)),
                                            options));
    ASSERT_TRUE(driver::prepared_batchable(prepared.back(), options));
  }
  // Same execution engine + same program shape → one bucket.
  for (std::size_t i = 1; i < kLanes; ++i) {
    EXPECT_EQ(driver::prepared_batch_key(prepared[i]),
              driver::prepared_batch_key(prepared[0]));
  }

  staged.store(true, std::memory_order_release);
  std::vector<std::thread> threads;
  threads.reserve(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    threads.emplace_back(
        [&, i] { coalescer.execute({&prepared[i]}, options); });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(coalescer.batches_run(), 1u);
  EXPECT_EQ(coalescer.lanes_run(), kLanes);
  EXPECT_EQ(coalescer.cross_request_batches(), 1u);
  EXPECT_EQ(coalescer.failed_batches(), 0u);
  EXPECT_EQ(coalescer.pending_lanes(), 0u);

  // Byte-identity per lane: the batch fills exactly what single-cell
  // verification fills.
  for (std::size_t i = 0; i < kLanes; ++i) {
    driver::PreparedCell solo =
        driver::prepare_cell(cell_for(101 + static_cast<std::int64_t>(i)), options);
    driver::verify_cell(solo, options);
    EXPECT_EQ(driver::to_json({prepared[i].res}), driver::to_json({solo.res}))
        << "lane " << i;
    EXPECT_TRUE(prepared[i].res.verified) << "lane " << i;
  }
}

TEST(CellCoalescer, SingleLaneRunsWithoutBatchMachinery) {
  CellCoalescer coalescer(8);
  driver::SweepOptions options;
  driver::PreparedCell prep = driver::prepare_cell(cell_for(101), options);
  ASSERT_TRUE(driver::prepared_batchable(prep, options));
  coalescer.execute({&prep}, options);
  EXPECT_EQ(coalescer.batches_run(), 1u);
  EXPECT_EQ(coalescer.lanes_run(), 1u);
  EXPECT_EQ(coalescer.cross_request_batches(), 0u);
  EXPECT_TRUE(prep.res.verified);
}

TEST(CellCoalescer, BatchRunsUnderMinimumPositiveDeadline) {
  // Two lanes, one with a generous compile deadline and one with none: the
  // collected batch must run under the tight lane's budget — observable only
  // indirectly, so this test pins the fallback: a failed batch re-verifies
  // each lane under its own options, and results stay correct.
  constexpr std::size_t kLanes = 2;
  CellCoalescer* coalescer_ptr = nullptr;
  std::atomic<bool> staged{false};
  CellCoalescer coalescer(8, [&] {
    while (!staged.load(std::memory_order_acquire) ||
           coalescer_ptr->pending_lanes() < kLanes) {
      std::this_thread::yield();
    }
  });
  coalescer_ptr = &coalescer;

  driver::SweepOptions tight;
  tight.retry.compile_deadline = 30.0;  // generous: VM lanes never hit it
  driver::SweepOptions loose;

  driver::PreparedCell a = driver::prepare_cell(cell_for(101), tight);
  driver::PreparedCell b = driver::prepare_cell(cell_for(102), loose);
  staged.store(true, std::memory_order_release);
  std::thread ta([&] { coalescer.execute({&a}, tight); });
  std::thread tb([&] { coalescer.execute({&b}, loose); });
  ta.join();
  tb.join();

  EXPECT_EQ(coalescer.cross_request_batches(), 1u);
  EXPECT_TRUE(a.res.verified);
  EXPECT_TRUE(b.res.verified);
}

// --- service-level coalesced serving -----------------------------------------

TEST(SweepServiceCoalesce, ConcurrentDistinctQueriesShareBatchesByteIdentically) {
  // The serving-tier hammer: distinct queries (same shape, different trip
  // counts) issued concurrently through a coalescing service must (a) share
  // at least one cross-request batch and (b) produce bodies byte-identical
  // to a sequential, non-coalescing service.
  constexpr std::size_t kQueries = 4;

  // Reference: batching and coalescing off.
  ServerConfig sequential_config;
  sequential_config.batch_width(1).coalesce(false);
  SweepService sequential(sequential_config);
  ASSERT_EQ(sequential.coalescer(), nullptr);
  std::vector<std::string> expected(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    const QueryResult r =
        sequential.handle(sweep_body(201 + static_cast<std::int64_t>(i)));
    ASSERT_EQ(r.status, 200) << r.error;
    expected[i] = r.body;
  }

  // Coalescing service, runner held until every query's lane arrived.
  std::atomic<bool> staged{false};
  const CellCoalescer* coalescer = nullptr;
  ServerConfig config;
  config.batch_width(8).coalesce(true).batch_hook([&] {
    while (!staged.load(std::memory_order_acquire) ||
           coalescer->pending_lanes() < kQueries) {
      std::this_thread::yield();
    }
  });
  SweepService service(config);
  coalescer = service.coalescer();
  ASSERT_NE(coalescer, nullptr);

  staged.store(true, std::memory_order_release);
  std::vector<QueryResult> results(kQueries);
  std::vector<std::thread> threads;
  threads.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    threads.emplace_back([&, i] {
      results[i] = service.handle(sweep_body(201 + static_cast<std::int64_t>(i)));
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (std::size_t i = 0; i < kQueries; ++i) {
    ASSERT_EQ(results[i].status, 200) << results[i].error;
    EXPECT_EQ(results[i].body, expected[i]) << "query " << i;
  }
  EXPECT_GE(coalescer->cross_request_batches(), 1u);
  EXPECT_EQ(coalescer->lanes_run(), kQueries);

  // And the cache keys never saw the grouping: a warm re-run of each query
  // is a full cache hit with the same bytes.
  for (std::size_t i = 0; i < kQueries; ++i) {
    const QueryResult warm =
        service.handle(sweep_body(201 + static_cast<std::int64_t>(i)));
    ASSERT_EQ(warm.status, 200);
    EXPECT_EQ(warm.cache_hits, warm.cells);
    EXPECT_EQ(warm.body, expected[i]);
  }
}

TEST(SweepServiceCoalesce, WidthOneDisablesCoalescerButServesIdentically) {
  // batch_width(1) means the operator turned batching off; the coalesce flag
  // alone must not construct the machinery, and bodies must not change.
  ServerConfig config;
  config.batch_width(1).coalesce(true);
  SweepService service(config);
  EXPECT_EQ(service.coalescer(), nullptr);
  const QueryResult r = service.handle(sweep_body(101));
  ASSERT_EQ(r.status, 200) << r.error;

  ServerConfig batched_config;
  batched_config.batch_width(8).coalesce(true);
  SweepService batched(batched_config);
  const QueryResult rb = batched.handle(sweep_body(101));
  ASSERT_EQ(rb.status, 200) << rb.error;
  EXPECT_EQ(r.body, rb.body);
}

}  // namespace
}  // namespace csr::serve
