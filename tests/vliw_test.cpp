// Tests for VLIW kernel packing: word/slot discipline, decrement placement
// after the last guarded issue, kernel length under resource pressure, and
// semantic equivalence of the flattened program.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/statements.hpp"
#include "codegen/vliw.hpp"
#include "dfg/algorithms.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

TEST(Vliw, KernelLengthMatchesScheduleWithAmpleResources) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const OptimalRetiming opt = minimum_period_retiming(g);
  const VliwKernel kernel = pack_vliw_kernel(
      g, opt.retiming, 20, ResourceModel::uniform(static_cast<int>(g.node_count())));
  // Retimed figure-3 has cycle period 1: one word of statements; the four
  // decrements overflow the single scalar slot into three extra words.
  EXPECT_EQ(kernel.words_per_trip, 4);
  EXPECT_EQ(kernel.words[0].statements.size(), 5u);
  EXPECT_EQ(kernel.words[0].register_ops.size(), 1u);
}

TEST(Vliw, WiderScalarSlotsCompactTheKernel) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const OptimalRetiming opt = minimum_period_retiming(g);
  VliwOptions options;
  options.scalar_slots = 4;
  const VliwKernel kernel = pack_vliw_kernel(
      g, opt.retiming, 20, ResourceModel::uniform(static_cast<int>(g.node_count())),
      options);
  EXPECT_EQ(kernel.words_per_trip, 1);
  EXPECT_EQ(kernel.words[0].register_ops.size(), 4u);
}

TEST(Vliw, RespectsFunctionalUnitWidths) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const OptimalRetiming opt = minimum_period_retiming(g);
  const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
  const VliwKernel kernel = pack_vliw_kernel(g, opt.retiming, 120, model);
  for (const VliwWord& word : kernel.words) {
    int adds = 0;
    int muls = 0;
    for (const Instruction& instr : word.statements) {
      (instr.stmt.op_text == "*" ? muls : adds) += 1;
    }
    EXPECT_LE(adds, 2);
    EXPECT_LE(muls, 2);
    EXPECT_LE(static_cast<int>(word.register_ops.size()), 1);
  }
}

TEST(Vliw, DecrementsNeverPrecedeLastGuardedIssue) {
  const DataFlowGraph g = benchmarks::allpole_filter();
  const OptimalRetiming opt = minimum_period_retiming(g);
  const VliwKernel kernel =
      pack_vliw_kernel(g, opt.retiming, 50, ResourceModel::adders_and_multipliers(2, 2));
  std::map<std::string, int> last_guard;
  std::map<std::string, int> dec_word;
  for (int w = 0; w < static_cast<int>(kernel.words.size()); ++w) {
    for (const Instruction& instr : kernel.words[static_cast<std::size_t>(w)].statements) {
      last_guard[instr.guard] = std::max(last_guard[instr.guard], w);
    }
    for (const Instruction& instr :
         kernel.words[static_cast<std::size_t>(w)].register_ops) {
      dec_word[instr.reg] = w;
    }
  }
  for (const auto& [reg, w] : dec_word) {
    if (last_guard.count(reg)) {
      EXPECT_GE(w, last_guard[reg]) << reg;
    }
  }
}

TEST(Vliw, FlattenedProgramMatchesOriginalSemantics) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    for (const int units : {2, 4}) {
      const VliwKernel kernel = pack_vliw_kernel(
          g, opt.retiming, 23, ResourceModel::adders_and_multipliers(units, units));
      EXPECT_TRUE(kernel.program.validate().empty()) << info.name;
      const auto diffs = compare_programs(original_program(g, 23), kernel.program,
                                          array_names(g));
      EXPECT_TRUE(diffs.empty())
          << info.name << ": " << (diffs.empty() ? "" : diffs.front());
    }
  }
}

TEST(Vliw, UtilizationIsSane) {
  const DataFlowGraph g = benchmarks::elliptic_filter();
  const OptimalRetiming opt = minimum_period_retiming(g);
  const VliwKernel kernel =
      pack_vliw_kernel(g, opt.retiming, 100, ResourceModel::adders_and_multipliers(4, 4));
  EXPECT_GT(kernel.utilization, 0.0);
  EXPECT_LE(kernel.utilization, 1.0);
}

TEST(Vliw, ResourcePressureStretchesTheKernel) {
  const DataFlowGraph g = benchmarks::iir_filter();
  const OptimalRetiming opt = minimum_period_retiming(g);
  const VliwKernel wide =
      pack_vliw_kernel(g, opt.retiming, 30, ResourceModel::uniform(8));
  const VliwKernel narrow =
      pack_vliw_kernel(g, opt.retiming, 30, ResourceModel::uniform(1));
  EXPECT_GT(narrow.words_per_trip, wide.words_per_trip);
  EXPECT_GE(narrow.words_per_trip, 8);  // 8 unit-time ops on one unit
}

TEST(Vliw, RejectsBadInputs) {
  const DataFlowGraph nonunit = benchmarks::chao_sha_example();
  EXPECT_THROW(pack_vliw_kernel(nonunit, Retiming(nonunit.node_count()), 50,
                                ResourceModel::uniform(2)),
               InvalidArgument);
  const DataFlowGraph g = benchmarks::iir_filter();
  const OptimalRetiming opt = minimum_period_retiming(g);
  EXPECT_THROW(pack_vliw_kernel(g, opt.retiming, 1, ResourceModel::uniform(2)),
               InvalidArgument);
  VliwOptions bad;
  bad.scalar_slots = 0;
  EXPECT_THROW(pack_vliw_kernel(g, opt.retiming, 30, ResourceModel::uniform(2), bad),
               InvalidArgument);
}

TEST(VliwCycles, CsrCyclesFormula) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
  const std::int64_t n = 50;
  const VliwCycleAccounting acct = vliw_cycle_accounting(g, r, n, model);
  EXPECT_EQ(acct.csr_cycles, (n + r.max_value()) * acct.kernel_words);
  EXPECT_EQ(acct.expanded_cycles, acct.prologue_words +
                                      (n - r.max_value()) * acct.kernel_words +
                                      acct.epilogue_words);
  EXPECT_GT(acct.prologue_words, 0);
  EXPECT_GT(acct.epilogue_words, 0);
}

TEST(VliwCycles, OverheadVanishesWithTripCount) {
  const DataFlowGraph g = benchmarks::allpole_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
  const double small = vliw_cycle_accounting(g, r, 20, model).overhead;
  const double large = vliw_cycle_accounting(g, r, 2000, model).overhead;
  EXPECT_LT(large, small);
  EXPECT_LT(large, 0.01);  // < 1% at realistic trip counts
}

TEST(VliwCycles, PrologueNeverExceedsFullStagesOfKernel) {
  // Each prologue/epilogue stage issues a subset of the kernel statements,
  // so its word count is bounded by the statement-only kernel length.
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const ResourceModel model = ResourceModel::adders_and_multipliers(2, 2);
    const VliwCycleAccounting acct = vliw_cycle_accounting(g, r, 50, model);
    EXPECT_LE(acct.prologue_words, r.max_value() * acct.kernel_words) << info.name;
    EXPECT_LE(acct.epilogue_words, r.max_value() * acct.kernel_words) << info.name;
  }
}

}  // namespace
}  // namespace csr
