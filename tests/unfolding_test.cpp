// Tests for graph unfolding: the Parhi construction, its invariants
// (legality, delay conservation, iteration-bound scaling) and the
// fold/lift retiming maps of Theorem 4.5.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "dfg/random.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"
#include "unfolding/unfold.hpp"

namespace csr {
namespace {

TEST(Unfolding, FactorOneIsIdentityShape) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const Unfolding u(g, 1);
  EXPECT_EQ(u.graph().node_count(), g.node_count());
  EXPECT_EQ(u.graph().edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(u.graph().edge(e).delay, g.edge(e).delay);
  }
}

TEST(Unfolding, RejectsBadFactor) {
  EXPECT_THROW(Unfolding(benchmarks::figure1_example(), 0), InvalidArgument);
}

TEST(Unfolding, NodeBookkeeping) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const Unfolding u(g, 3);
  EXPECT_EQ(u.graph().node_count(), 9u);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (int j = 0; j < 3; ++j) {
      const NodeId w = u.copy(v, j);
      EXPECT_EQ(u.original_node(w), v);
      EXPECT_EQ(u.copy_index(w), j);
      EXPECT_EQ(u.graph().node(w).time, g.node(v).time);
    }
  }
}

TEST(Unfolding, EdgeConstructionFigure4) {
  // Edge B→A with delay 3 unfolded by 3: copy j feeds copy (j+3)%3 = j with
  // delay ⌊(j+3)/3⌋ = 1.
  const DataFlowGraph g = benchmarks::figure4_example();
  const Unfolding u(g, 3);
  const NodeId b0 = u.copy(*g.find_node("B"), 0);
  const NodeId a0 = u.copy(*g.find_node("A"), 0);
  bool found = false;
  for (const EdgeId e : u.graph().out_edges(b0)) {
    if (u.graph().edge(e).to == a0) {
      EXPECT_EQ(u.graph().edge(e).delay, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Unfolding, DelayTotalsConservedPerOriginalEdge) {
  SplitMix64 rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const DataFlowGraph g = random_dfg(rng);
    for (const int f : {2, 3, 4}) {
      const Unfolding u(g, f);
      // Each original edge contributes f unfolded edges whose delays sum to
      // its own delay (standard unfolding property: Σ⌊(j+d)/f⌋ over j = d).
      std::size_t idx = 0;
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        int sum = 0;
        for (int j = 0; j < f; ++j, ++idx) {
          sum += u.graph().edge(static_cast<EdgeId>(idx)).delay;
        }
        EXPECT_EQ(sum, g.edge(e).delay);
      }
    }
  }
}

TEST(Unfolding, LegalGraphsStayLegal) {
  SplitMix64 rng(32);
  for (int trial = 0; trial < 30; ++trial) {
    const DataFlowGraph g = random_dfg(rng);
    for (const int f : {2, 5}) {
      EXPECT_TRUE(Unfolding(g, f).graph().is_legal());
    }
  }
}

TEST(Unfolding, IterationBoundScalesByFactor) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const auto bound = iteration_bound(g);
    ASSERT_TRUE(bound.has_value()) << info.name;
    for (const int f : {2, 3}) {
      const auto unfolded_bound = iteration_bound(unfold(g, f));
      ASSERT_TRUE(unfolded_bound.has_value()) << info.name;
      EXPECT_EQ(*unfolded_bound, *bound * Rational(f)) << info.name << " f=" << f;
    }
  }
}

TEST(Unfolding, CyclePeriodNeverBelowUnfoldedBound) {
  const DataFlowGraph g = benchmarks::elliptic_filter();
  const Unfolding u(g, 3);
  // B = 8/3, so the unfolded graph's bound is 8 — and retiming can reach a
  // cycle period of 8, i.e. the rate-optimal iteration period 8/3.
  const OptimalRetiming opt = minimum_period_retiming(u.graph());
  EXPECT_EQ(opt.period, 8);
}

TEST(Unfolding, LiftRetimingPreservesLegality) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    for (const int f : {2, 3, 4}) {
      const Unfolding u(g, f);
      const Retiming lifted = u.lift_retiming(opt.retiming);
      EXPECT_TRUE(is_legal_retiming(u.graph(), lifted)) << info.name << " f=" << f;
      // fold ∘ lift is the identity (Σ_j ⌈(r−j)/f⌉ = r).
      EXPECT_EQ(u.fold_retiming(lifted).values(), opt.retiming.values())
          << info.name << " f=" << f;
    }
  }
}

TEST(Unfolding, LiftCeilingFormula) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const Unfolding u(g, 3);
  Retiming r(g.node_count());
  r.set(0, 4);
  // ⌈(4−j)/3⌉ for j = 0,1,2 → 2, 1, 1.
  const Retiming lifted = u.lift_retiming(r);
  EXPECT_EQ(lifted[u.copy(0, 0)], 2);
  EXPECT_EQ(lifted[u.copy(0, 1)], 1);
  EXPECT_EQ(lifted[u.copy(0, 2)], 1);
}

TEST(Unfolding, FoldRetimingSumsCopies) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const Unfolding u(g, 2);
  Retiming r(u.graph().node_count());
  r.set(u.copy(0, 0), 1);
  r.set(u.copy(0, 1), 2);
  r.set(u.copy(2, 1), 1);
  const Retiming folded = u.fold_retiming(r);
  EXPECT_EQ(folded[0], 3);
  EXPECT_EQ(folded[1], 0);
  EXPECT_EQ(folded[2], 1);
}

TEST(Unfolding, FoldRejectsMismatchedRetiming) {
  const Unfolding u(benchmarks::figure4_example(), 2);
  EXPECT_THROW(u.fold_retiming(Retiming(2)), InvalidArgument);
  EXPECT_THROW(u.lift_retiming(Retiming(5)), InvalidArgument);
}

TEST(Unfolding, UnfoldThenRetimeReachesRateOptimalPeriod) {
  // Elliptic filter: B = 8/3, so unfolding by 3 and retiming must reach an
  // iteration period of exactly 8/3 (cycle period 8 over 3 iterations).
  const DataFlowGraph g = benchmarks::lattice_filter();
  const Unfolding u(g, 3);
  const OptimalRetiming opt = minimum_period_retiming(u.graph());
  EXPECT_EQ(Rational(opt.period, 3), Rational(8, 3));
}

}  // namespace
}  // namespace csr
