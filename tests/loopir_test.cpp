// Tests for the loop-program IR: instruction constructors, code-size
// accounting, register discovery, validation and the pretty-printer.

#include <gtest/gtest.h>

#include "loopir/printer.hpp"
#include "loopir/program.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

Statement simple_statement() {
  Statement s;
  s.array = "A";
  s.offset = 3;
  s.op_seed = op_seed_for("A");
  s.sources = {ArrayRef{"E", -1}};
  s.op_text = "+";
  return s;
}

TEST(Instruction, Constructors) {
  const Instruction stmt = Instruction::statement(simple_statement(), "p1");
  EXPECT_EQ(stmt.kind, InstrKind::kStatement);
  EXPECT_EQ(stmt.guard, "p1");

  const Instruction setup = Instruction::setup("p2", 3);
  EXPECT_EQ(setup.kind, InstrKind::kSetup);
  EXPECT_EQ(setup.value, 3);

  const Instruction dec = Instruction::decrement("p2", 2);
  EXPECT_EQ(dec.kind, InstrKind::kDecrement);
  EXPECT_EQ(dec.value, 2);
}

TEST(Instruction, RejectsBadArguments) {
  EXPECT_THROW(Instruction::setup("", 0), InvalidArgument);
  EXPECT_THROW(Instruction::decrement("p", 0), InvalidArgument);
}

TEST(LoopSegment, TripCount) {
  LoopSegment seg;
  seg.begin = 1;
  seg.end = 10;
  seg.step = 3;
  EXPECT_EQ(seg.trip_count(), 4);  // 1, 4, 7, 10
  seg.begin = 5;
  seg.end = 4;
  EXPECT_EQ(seg.trip_count(), 0);
  seg.begin = seg.end = 7;
  seg.step = 1;
  EXPECT_TRUE(seg.straight_line());
  EXPECT_EQ(seg.trip_count(), 1);
}

TEST(LoopProgram, CodeSizeCountsEveryInstruction) {
  LoopProgram p;
  p.n = 10;
  LoopSegment setup;
  setup.begin = setup.end = 0;
  setup.instructions.push_back(Instruction::setup("p1", 0));
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 10;
  loop.instructions.push_back(Instruction::statement(simple_statement(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {setup, loop};
  EXPECT_EQ(p.code_size(), 3);
}

TEST(LoopProgram, ConditionalRegistersInFirstUseOrder) {
  LoopProgram p;
  LoopSegment seg;
  seg.begin = seg.end = 0;
  seg.instructions.push_back(Instruction::setup("p2", 0));
  seg.instructions.push_back(Instruction::setup("p1", 1));
  seg.instructions.push_back(Instruction::statement(simple_statement(), "p1"));
  p.segments = {seg};
  EXPECT_EQ(p.conditional_registers(), (std::vector<std::string>{"p2", "p1"}));
}

TEST(LoopProgram, ValidateFlagsGuardBeforeSetup) {
  LoopProgram p;
  LoopSegment seg;
  seg.begin = seg.end = 0;
  seg.instructions.push_back(Instruction::statement(simple_statement(), "p9"));
  p.segments = {seg};
  const auto problems = p.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("p9"), std::string::npos);
}

TEST(LoopProgram, ValidateFlagsDecrementBeforeSetup) {
  LoopProgram p;
  LoopSegment seg;
  seg.begin = seg.end = 0;
  seg.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {seg};
  EXPECT_FALSE(p.validate().empty());
}

TEST(LoopProgram, ValidateFlagsSetupInsideLoop) {
  LoopProgram p;
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.instructions.push_back(Instruction::setup("p1", 0));
  p.segments = {loop};
  EXPECT_FALSE(p.validate().empty());
}

TEST(LoopProgram, ValidateFlagsBadStep) {
  LoopProgram p;
  LoopSegment loop;
  loop.begin = 1;
  loop.end = 5;
  loop.step = 0;
  p.segments = {loop};
  EXPECT_FALSE(p.validate().empty());
}

TEST(OpSeed, StableAndDistinct) {
  EXPECT_EQ(op_seed_for("A"), op_seed_for("A"));
  EXPECT_NE(op_seed_for("A"), op_seed_for("B"));
  EXPECT_NE(op_seed_for("AB"), op_seed_for("BA"));
}

TEST(Printer, SymbolicIndices) {
  const Instruction instr = Instruction::statement(simple_statement(), "p1");
  EXPECT_EQ(format_instruction(instr, 0, /*substitute=*/false),
            "(p1) A[i+3] = E[i-1];");
}

TEST(Printer, SubstitutedIndices) {
  const Instruction instr = Instruction::statement(simple_statement());
  EXPECT_EQ(format_instruction(instr, 2, /*substitute=*/true), "A[5] = E[1];");
}

TEST(Printer, SetupAndDecrementForms) {
  EXPECT_EQ(format_instruction(Instruction::setup("p1", 3), 0, false),
            "p1 = setup 3 : -n;");
  EXPECT_EQ(format_instruction(Instruction::decrement("p1", 2), 0, false),
            "p1 = p1 - 2;");
}

TEST(Printer, MultiOperandStatement) {
  Statement s;
  s.array = "C";
  s.offset = 0;
  s.sources = {ArrayRef{"A", 0}, ArrayRef{"B", -2}};
  s.op_text = "+";
  EXPECT_EQ(format_instruction(Instruction::statement(s), 0, false),
            "C[i] = A[i] + B[i-2];");
}

TEST(Printer, SourceFreeStatementPrintsInput) {
  Statement s;
  s.array = "X";
  s.offset = 0;
  EXPECT_EQ(format_instruction(Instruction::statement(s), 0, false), "X[i] = input();");
}

TEST(Printer, WholeProgramShape) {
  LoopProgram p;
  p.name = "demo";
  p.n = 4;
  LoopSegment pre;
  pre.begin = pre.end = 0;
  pre.instructions.push_back(Instruction::setup("p1", 1));
  LoopSegment loop;
  loop.begin = 0;
  loop.end = 4;
  loop.step = 2;
  loop.instructions.push_back(Instruction::statement(simple_statement(), "p1"));
  loop.instructions.push_back(Instruction::decrement("p1"));
  p.segments = {pre, loop};
  const std::string text = to_source(p);
  EXPECT_NE(text.find("// demo"), std::string::npos);
  EXPECT_NE(text.find("p1 = setup 1 : -n;"), std::string::npos);
  EXPECT_NE(text.find("for i = 0 to 4 by 2 do"), std::string::npos);
  EXPECT_NE(text.find("  (p1) A[i+3] = E[i-1];"), std::string::npos);
  EXPECT_NE(text.find("end"), std::string::npos);
}

TEST(Printer, SkipsEmptySegments) {
  LoopProgram p;
  LoopSegment empty;
  empty.begin = 2;
  empty.end = 1;
  p.segments = {empty};
  EXPECT_EQ(to_source(p).find("for"), std::string::npos);
}

}  // namespace
}  // namespace csr
