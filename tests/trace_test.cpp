// Tests for the execution tracer: per-trip enabled/disabled reporting and
// its agreement with the VM's actual execution counts.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"
#include "vm/machine.hpp"
#include "vm/trace.hpp"

namespace csr {
namespace {

TEST(Trace, ReportsEveryTripInOrder) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const LoopProgram p = unfolded_csr_program(g, 3, 7);
  const auto trace = trace_program(p);
  // One entry per trip of every segment: 1 setup trip + ⌈7/3⌉ = 3 loop trips.
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[1].i, 1);
  EXPECT_EQ(trace[2].i, 4);
  EXPECT_EQ(trace[3].i, 7);
}

TEST(Trace, GuardWindowsMatchTheVm) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = 15;
  const LoopProgram p = retimed_csr_program(g, r, n);
  const auto trace = trace_program(p);
  std::int64_t enabled = 0;
  std::int64_t disabled = 0;
  for (const TripTrace& trip : trace) {
    enabled += static_cast<std::int64_t>(trip.enabled.size());
    disabled += static_cast<std::int64_t>(trip.disabled.size());
  }
  const Machine m = run_program(p);
  EXPECT_EQ(enabled, m.executed_statements());
  EXPECT_EQ(disabled, m.disabled_statements());
}

TEST(Trace, FirstTripOfCsrLoopShowsHiddenPrologue) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;  // depth 3
  const LoopProgram p = retimed_csr_program(g, r, 10);
  const auto trace = trace_program(p);
  // Segment 0 is the setups (no statements); trip at i = 1−3 = −2 enables
  // only A[1] (the deepest-pipelined node), everything else disabled.
  const TripTrace& first = trace[1];
  EXPECT_EQ(first.i, -2);
  ASSERT_EQ(first.enabled.size(), 1u);
  EXPECT_EQ(first.enabled[0], "A[1]");
  EXPECT_EQ(first.disabled.size(), 4u);
}

TEST(Trace, SubstitutesAbsoluteIndices) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const auto trace = trace_program(unfolded_csr_program(g, 2, 4));
  const std::string table = format_trace(trace);
  EXPECT_NE(table.find("i=1: A[1] B[1] C[1] A[2] B[2] C[2]"), std::string::npos);
  EXPECT_NE(table.find("i=3: A[3] B[3] C[3] A[4] B[4] C[4]"), std::string::npos);
}

TEST(Trace, FormatsDisabledStatements) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const auto trace = trace_program(unfolded_csr_program(g, 3, 4));  // 4 mod 3 = 1
  const std::string table = format_trace(trace);
  EXPECT_NE(table.find("disabled:"), std::string::npos);
  EXPECT_NE(table.find("A[5]"), std::string::npos);  // the cut copy
}

TEST(Trace, RejectsInvalidProgram) {
  LoopProgram p;
  LoopSegment seg;
  seg.begin = 1;
  seg.end = 1;
  Statement s;
  s.array = "A";
  seg.instructions.push_back(Instruction::statement(s, "p1"));
  p.segments = {seg};
  EXPECT_THROW(trace_program(p), InvalidArgument);
}

}  // namespace
}  // namespace csr
