// The shipped data/*.dfg files must stay in sync with the programmatic
// benchmark factories: same name, nodes, times, edges and delays.

#include <gtest/gtest.h>

#include <fstream>
#include <map>

#include "benchmarks/benchmarks.hpp"
#include "dfg/io.hpp"
#include "mdfg/builders.hpp"
#include "mdfg/io.hpp"

#ifndef CSR_DATA_DIR
#define CSR_DATA_DIR "data"
#endif

namespace csr {
namespace {

const std::map<std::string, DataFlowGraph (*)()>& file_factories() {
  static const std::map<std::string, DataFlowGraph (*)()> map = {
      {"iir.dfg", benchmarks::iir_filter},
      {"diffeq.dfg", benchmarks::differential_equation_solver},
      {"allpole.dfg", benchmarks::allpole_filter},
      {"elliptic.dfg", benchmarks::elliptic_filter},
      {"lattice.dfg", benchmarks::lattice_filter},
      {"volterra.dfg", benchmarks::volterra_filter},
      {"figure3.dfg", benchmarks::figure3_example},
      {"figure4.dfg", benchmarks::figure4_example},
      {"chao_sha_fig8.dfg", benchmarks::chao_sha_example},
  };
  return map;
}

class DataFileTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DataFileTest, FileMatchesFactory) {
  const std::string path = std::string(CSR_DATA_DIR) + "/" + GetParam();
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing data file " << path;
  const DataFlowGraph from_file = read_text(in);
  const DataFlowGraph from_factory = file_factories().at(GetParam())();

  EXPECT_EQ(from_file.name(), from_factory.name());
  ASSERT_EQ(from_file.node_count(), from_factory.node_count());
  ASSERT_EQ(from_file.edge_count(), from_factory.edge_count());
  for (NodeId v = 0; v < from_factory.node_count(); ++v) {
    EXPECT_EQ(from_file.node(v).name, from_factory.node(v).name);
    EXPECT_EQ(from_file.node(v).time, from_factory.node(v).time);
  }
  for (EdgeId e = 0; e < from_factory.edge_count(); ++e) {
    EXPECT_EQ(from_file.edge(e).from, from_factory.edge(e).from);
    EXPECT_EQ(from_file.edge(e).to, from_factory.edge(e).to);
    EXPECT_EQ(from_file.edge(e).delay, from_factory.edge(e).delay);
  }
}

// The shipped data/*.mdfg files must likewise match the nested benchmark
// factories, through the vector-delay text format.
class MdDataFileTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MdDataFileTest, FileMatchesFactory) {
  const std::string path = std::string(CSR_DATA_DIR) + "/" + GetParam() + ".mdfg";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing data file " << path;
  const MdDataFlowGraph from_file = read_md_text(in);
  const mdfg::MdBenchmarkInfo* info = mdfg::find_md_benchmark(GetParam());
  ASSERT_NE(info, nullptr);
  const MdDataFlowGraph from_factory = info->factory();

  EXPECT_EQ(from_file.name(), from_factory.name());
  ASSERT_EQ(from_file.node_count(), from_factory.node_count());
  ASSERT_EQ(from_file.edge_count(), from_factory.edge_count());
  for (NodeId v = 0; v < from_factory.node_count(); ++v) {
    EXPECT_EQ(from_file.node(v).name, from_factory.node(v).name);
    EXPECT_EQ(from_file.node(v).time, from_factory.node(v).time);
  }
  for (EdgeId e = 0; e < from_factory.edge_count(); ++e) {
    EXPECT_EQ(from_file.edge(e).from, from_factory.edge(e).from);
    EXPECT_EQ(from_file.edge(e).to, from_factory.edge(e).to);
    EXPECT_EQ(from_file.edge(e).delay, from_factory.edge(e).delay);
  }
  // Round-trip: re-serializing the parsed file is a fixpoint.
  EXPECT_EQ(to_text(from_file), to_text(from_factory));
}

INSTANTIATE_TEST_SUITE_P(AllFiles, MdDataFileTest,
                         ::testing::Values("conv3x3", "jacobi5", "iir2d",
                                           "tline2d"));

INSTANTIATE_TEST_SUITE_P(AllFiles, DataFileTest,
                         ::testing::Values("iir.dfg", "diffeq.dfg", "allpole.dfg",
                                           "elliptic.dfg", "lattice.dfg",
                                           "volterra.dfg", "figure3.dfg",
                                           "figure4.dfg", "chao_sha_fig8.dfg"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace csr
