// Round-trips every EnumNames table (support/enum_names.hpp): printing and
// parsing are derived from one entries array, so `parse(to_string(v)) == v`
// must hold for every enumerator of every registered enum, unknown names
// must parse to nullopt, and unregistered values must print as "?".

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>

#include "driver/export.hpp"
#include "driver/sweep.hpp"
#include "support/enum_names.hpp"

namespace csr {
namespace {

/// Shared exhaustiveness check: every entry round-trips, and no two entries
/// share a name (a duplicate would make parsing ambiguous).
template <typename E>
void expect_table_round_trips() {
  std::set<std::string> names;
  for (const auto& [value, name] : EnumNames<E>::entries) {
    EXPECT_EQ(enum_name(value), name);
    const std::optional<E> parsed = parse_enum<E>(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, value) << name;
    EXPECT_TRUE(names.insert(std::string(name)).second) << "duplicate: " << name;
  }
  EXPECT_EQ(names.size(), enum_count<E>());
  EXPECT_FALSE(parse_enum<E>("no-such-enumerator").has_value());
  EXPECT_FALSE(parse_enum<E>("").has_value());
}

TEST(EnumNames, EngineTableRoundTrips) {
  expect_table_round_trips<driver::Engine>();
  EXPECT_EQ(enum_count<driver::Engine>(), 4u);
  EXPECT_EQ(driver::to_string(driver::Engine::kOptRetiming), "opt-retiming");
  EXPECT_EQ(driver::parse_engine("modulo"), driver::Engine::kModulo);
  EXPECT_EQ(driver::parse_engine("opt-exact"), driver::Engine::kOptExact);
}

TEST(EnumNames, ExecEngineTableRoundTrips) {
  expect_table_round_trips<driver::ExecEngine>();
  EXPECT_EQ(enum_count<driver::ExecEngine>(), 3u);
  EXPECT_EQ(driver::parse_exec_engine("native"), driver::ExecEngine::kNative);
  EXPECT_EQ(driver::parse_exec_engine("vm"), driver::ExecEngine::kVm);
}

TEST(EnumNames, TransformTableRoundTrips) {
  expect_table_round_trips<driver::Transform>();
  // All nine forms of Tables 1–4: original, four expanded, four CSR.
  EXPECT_EQ(enum_count<driver::Transform>(), 9u);
  EXPECT_EQ(driver::to_string(driver::Transform::kRetimedUnfoldedCsr),
            "retimed_unfolded_csr");
  EXPECT_EQ(driver::parse_transform("unfolded_retimed"),
            driver::Transform::kUnfoldedRetimed);
}

TEST(EnumNames, ExportFormatTableRoundTrips) {
  expect_table_round_trips<driver::ExportFormat>();
  EXPECT_EQ(enum_count<driver::ExportFormat>(), 2u);
  EXPECT_EQ(driver::parse_export_format("csv"), driver::ExportFormat::kCsv);
  EXPECT_EQ(driver::parse_export_format("json"), driver::ExportFormat::kJson);
}

TEST(EnumNames, UnregisteredValuePrintsQuestionMark) {
  // Mirrors the defensive default of the old switch-based to_string.
  EXPECT_EQ(enum_name(static_cast<driver::Transform>(255)), "?");
  EXPECT_EQ(enum_name(static_cast<driver::Engine>(255)), "?");
}

TEST(EnumNames, TablesAreUsableAtCompileTime) {
  static_assert(enum_name(driver::ExecEngine::kMap) == "map");
  static_assert(parse_enum<driver::ExecEngine>("map") == driver::ExecEngine::kMap);
  static_assert(!parse_enum<driver::Engine>("bogus").has_value());
  SUCCEED();
}

}  // namespace
}  // namespace csr
