// Tests for the socket-free query service (src/serve/service.hpp): request
// parsing/validation, cache + journal warm start, byte-identity of served
// bodies with the offline run_sweep export, the shared content-key framing,
// deadline enforcement, and the deterministic 8-thread single-flight hammer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "dfg/io.hpp"
#include "driver/config.hpp"
#include "driver/export.hpp"
#include "serve/cache.hpp"
#include "serve/config.hpp"
#include "serve/service.hpp"
#include "support/hash.hpp"

namespace csr::serve {
namespace {

std::string temp_journal_path(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / (std::string("csr_serve_test_") + tag + "_" +
                 std::to_string(::getpid()) + ".journal"))
      .string();
}

constexpr const char* kSmallQuery =
    R"({"benchmarks":["IIR Filter"],"transforms":["retimed_csr"]})";

// --- parse_query validation -------------------------------------------------

TEST(ParseQuery, SyntaxErrorIs400) {
  QueryResult rejection;
  EXPECT_FALSE(parse_query("{not json", &rejection).has_value());
  EXPECT_EQ(rejection.status, 400);
}

TEST(ParseQuery, SemanticErrorsAre422) {
  const char* bad[] = {
      R"(["not an object"])",
      R"({})",                                           // missing benchmarks
      R"({"benchmarks":[]})",                            // empty benchmarks
      R"({"benchmarks":["no such graph"]})",             // unknown graph
      R"({"benchmarks":["IIR Filter"],"engines":["warp-drive"]})",
      R"({"benchmarks":["IIR Filter"],"factors":[1]})",  // below 2
      R"({"benchmarks":["IIR Filter"],"factors":[65]})",
      R"({"benchmarks":["IIR Filter"],"format":"xml"})",
      R"({"benchmarks":["IIR Filter"],"deadline_ms":-5})",
      R"({"benchmarks":["IIR Filter"],"verify":"yes"})",
      R"({"benchmarks":[42]})",
      R"({"benchmarks":["IIR Filter"],"trip_counts":["a"]})",
  };
  for (const char* body : bad) {
    QueryResult rejection;
    EXPECT_FALSE(parse_query(body, &rejection).has_value()) << body;
    EXPECT_EQ(rejection.status, 422) << body;
    EXPECT_FALSE(rejection.error.empty()) << body;
  }
}

TEST(ParseQuery, MapsFieldsOntoSweepConfig) {
  QueryResult rejection;
  const auto query = parse_query(
      R"({"benchmarks":["IIR Filter","Figure 1"],"trip_counts":[7],
          "transforms":["original","retimed_unfolded"],"factors":[2,3],
          "verify":false,"format":"csv","deadline_ms":1500})",
      &rejection);
  ASSERT_TRUE(query.has_value()) << rejection.error;
  const driver::SweepGrid& grid = query->config.grid();
  EXPECT_EQ(grid.benchmarks.size(), 2u);
  EXPECT_EQ(grid.trip_counts, (std::vector<std::int64_t>{7}));
  EXPECT_EQ(grid.factors, (std::vector<int>{2, 3}));
  EXPECT_FALSE(query->config.options().verify);
  EXPECT_EQ(query->format, driver::ExportFormat::kCsv);
  EXPECT_DOUBLE_EQ(query->deadline_seconds, 1.5);
}

// --- shared key framing -----------------------------------------------------

TEST(KeyPinning, JournalKeyIsTheSharedContentKey) {
  // The serve cache and the persistent journal must use the byte-identical
  // key for the same cell — both go through support/hash.hpp's content_key
  // with this exact field framing. If this test breaks, existing journals
  // (and warm-started caches) silently stop matching: bump deliberately.
  driver::SweepCell cell;
  cell.benchmark = "IIR Filter";
  cell.transform = driver::Transform::kRetimedCsr;
  driver::SweepOptions options;

  std::string dfg_text;
  for (const auto& info : benchmarks::all_graphs()) {
    if (info.name == cell.benchmark) dfg_text = to_text(info.factory());
  }
  ASSERT_FALSE(dfg_text.empty());

  const std::string expected =
      content_key('c', {"sweep-v3", cell.benchmark, dfg_text,
                        std::string(to_string(cell.engine)),
                        std::string(to_string(cell.exec)),
                        std::string(to_string(cell.transform)),
                        std::to_string(cell.factor), std::to_string(cell.n),
                        options.verify ? "1" : "0",
                        options.machine.description()});
  EXPECT_EQ(driver::journal_key(cell, options), expected);
  EXPECT_EQ(expected.front(), 'c');
}

TEST(KeyPinning, ContentKeyFieldFramingResistsConcatenation) {
  // {"ab","c"} and {"a","bc"} must hash differently — field boundaries are
  // part of the identity.
  EXPECT_NE(content_key('x', {"ab", "c"}), content_key('x', {"a", "bc"}));
  EXPECT_NE(content_key('x', {"ab"}), content_key('x', {"ab", ""}));
  EXPECT_NE(content_key('x', {}), content_key('y', {}));
  // Deterministic across calls.
  EXPECT_EQ(content_key('c', {"a", "b"}), content_key('c', {"a", "b"}));
}

// --- cache capacity accounting ----------------------------------------------

TEST(ShardedLruCache, TotalCapacityIsExact) {
  // The per-shard budgets must sum to exactly the configured capacity:
  // rounding each shard up used to let a 16-shard cache exceed it by up to
  // shards−1 entries. Overfill with keys landing on every shard and assert
  // the hard bound holds.
  for (const std::size_t capacity : {16u, 17u, 100u, 1000u}) {
    ShardedLruCache cache(capacity, 16);
    ASSERT_EQ(cache.shard_count(), 16u);
    EXPECT_EQ(cache.capacity(), capacity);
    for (int i = 0; i < 4096; ++i) {
      cache.put("key-" + std::to_string(i), "payload");
    }
    EXPECT_LE(cache.size(), capacity) << "capacity " << capacity;
    // The distribution is exact, not conservative: a fully hammered cache
    // should also fill close to its budget (every shard got ≥ base keys).
    EXPECT_GE(cache.size(), capacity - cache.shard_count());
  }
}

TEST(ShardedLruCache, CapacityBelowShardCountKeepsOnePerShard) {
  // The documented floor: at least one entry per shard, so tiny capacities
  // are raised to shard_count rather than starving shards to zero.
  ShardedLruCache cache(3, 16);
  EXPECT_EQ(cache.capacity(), cache.shard_count());
  for (int i = 0; i < 512; ++i) {
    cache.put("k" + std::to_string(i), "v");
  }
  EXPECT_LE(cache.size(), cache.capacity());
}

// --- execution, cache, byte-identity ----------------------------------------

TEST(SweepService, ServedBodyIsByteIdenticalToOfflineExport) {
  ServiceOptions options;
  SweepService service(options);

  QueryResult rejection;
  const auto query = parse_query(kSmallQuery, &rejection);
  ASSERT_TRUE(query.has_value());

  const QueryResult cold = service.execute(*query);
  ASSERT_EQ(cold.status, 200) << cold.error;
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(service.sweeps_executed(), 1u);

  // The same cells through the plain offline pipeline.
  driver::SweepConfig config;
  config.grid() = query->config.grid();
  const driver::SweepRun run = driver::run_sweep(config);
  EXPECT_EQ(cold.body, driver::to_json(run.results));

  // Warm: every cell from the LRU, still the same bytes.
  const QueryResult warm = service.execute(*query);
  ASSERT_EQ(warm.status, 200);
  EXPECT_EQ(warm.cache_hits, warm.cells);
  EXPECT_EQ(service.sweeps_executed(), 1u);  // no second sweep
  EXPECT_EQ(warm.body, cold.body);
}

TEST(SweepService, CsvFormatMatchesOfflineCsv) {
  ServiceOptions options;
  SweepService service(options);
  QueryResult rejection;
  const auto query = parse_query(
      R"({"benchmarks":["IIR Filter"],"transforms":["retimed_csr"],"format":"csv"})",
      &rejection);
  ASSERT_TRUE(query.has_value());
  const QueryResult result = service.execute(*query);
  ASSERT_EQ(result.status, 200);
  EXPECT_EQ(result.content_type, "text/csv");

  driver::SweepConfig config;
  config.grid() = query->config.grid();
  const driver::SweepRun run = driver::run_sweep(config);
  EXPECT_EQ(result.body, driver::to_csv(run.results));
}

TEST(SweepService, RejectsOversizedGrids) {
  ServiceOptions options;
  options.max_cells_per_request = 3;
  SweepService service(options);
  // Default transform list x factors expands well past 3 cells.
  const QueryResult result = service.handle(R"({"benchmarks":["IIR Filter"]})");
  EXPECT_EQ(result.status, 422);
}

TEST(SweepService, WarmStartsCacheFromJournal) {
  const std::string path = temp_journal_path("warm");
  std::filesystem::remove(path);
  {
    ServiceOptions options;
    options.journal_path = path;
    SweepService service(options);
    EXPECT_EQ(service.warm_started_cells(), 0u);
    const QueryResult cold = service.handle(kSmallQuery);
    ASSERT_EQ(cold.status, 200) << cold.error;
  }
  {
    // A fresh service over the same journal starts warm: no sweep executes.
    ServiceOptions options;
    options.journal_path = path;
    SweepService service(options);
    EXPECT_GT(service.warm_started_cells(), 0u);
    const QueryResult warm = service.handle(kSmallQuery);
    ASSERT_EQ(warm.status, 200);
    EXPECT_EQ(warm.cache_hits, warm.cells);
    EXPECT_EQ(service.sweeps_executed(), 0u);
  }
  std::filesystem::remove(path);
}

TEST(SweepService, DeadlineAlreadySpentIs504) {
  ServiceOptions options;
  options.compute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  SweepService service(options);
  QueryResult rejection;
  auto query = parse_query(kSmallQuery, &rejection);
  ASSERT_TRUE(query.has_value());
  query->deadline_seconds = 0.005;  // expires inside the compute hook
  const QueryResult result = service.execute(*query);
  EXPECT_EQ(result.status, 504);
  EXPECT_EQ(service.sweeps_executed(), 0u);
}

TEST(SweepService, DeadlineDoesNotApplyToCachedCells) {
  ServiceOptions options;
  SweepService service(options);
  QueryResult rejection;
  auto query = parse_query(kSmallQuery, &rejection);
  ASSERT_TRUE(query.has_value());
  ASSERT_EQ(service.execute(*query).status, 200);  // populate the cache

  // Even an effectively-expired deadline serves cached cells: phase 2
  // (execution) never runs, and that is the only deadline checkpoint.
  query->deadline_seconds = 1e-9;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const QueryResult warm = service.execute(*query);
  EXPECT_EQ(warm.status, 200);
  EXPECT_EQ(warm.cache_hits, warm.cells);
}

// --- error envelope + fast path ---------------------------------------------

TEST(SweepService, RejectionsCarryTheTypedEnvelope) {
  ServiceOptions options;
  SweepService service(options);

  const QueryResult syntax = service.handle("{not json");
  EXPECT_EQ(syntax.status, 400);
  EXPECT_EQ(syntax.content_type, "application/json");
  EXPECT_EQ(syntax.code, "bad_request");
  EXPECT_NE(syntax.body.find("{\"error\": {\"code\": \"bad_request\""),
            std::string::npos)
      << syntax.body;

  const QueryResult semantic = service.handle(R"({"benchmarks":[]})");
  EXPECT_EQ(semantic.status, 422);
  EXPECT_EQ(semantic.code, "invalid_query");
  EXPECT_NE(semantic.body.find("\"code\": \"invalid_query\""), std::string::npos);
  EXPECT_NE(semantic.body.find("\"message\": \""), std::string::npos);
}

TEST(SweepService, TryFastServesMemoThenCacheThenRejections) {
  ServiceOptions options;
  SweepService service(options);
  const std::string body = kSmallQuery;

  // Cold: the fast path must decline — the query needs compute.
  Query query;
  QueryResult fast;
  EXPECT_FALSE(service.try_fast(body, &query, &fast));
  const QueryResult cold = service.execute(query);
  ASSERT_EQ(cold.status, 200) << cold.error;

  // Warm: all cells cached → served inline, and memoized on the way out.
  QueryResult warm;
  ASSERT_TRUE(service.try_fast(body, &query, &warm));
  EXPECT_EQ(warm.status, 200);
  EXPECT_EQ(warm.body, cold.body);
  EXPECT_EQ(warm.cache_hits, warm.cells);

  // Hot: the exact request bytes hit the rendered-response memo.
  QueryResult hot;
  ASSERT_TRUE(service.try_fast(body, &query, &hot));
  EXPECT_EQ(hot.status, 200);
  EXPECT_EQ(hot.body, cold.body);

  // Rejections are always fast — parse failures never reach the pool.
  QueryResult rejected;
  ASSERT_TRUE(service.try_fast("{nope", &query, &rejected));
  EXPECT_EQ(rejected.status, 400);
}

TEST(SweepService, MemoDisabledStillServesCachedQueriesFast) {
  ServiceOptions options;
  options.memo_capacity = 0;
  SweepService service(options);
  ASSERT_EQ(service.handle(kSmallQuery).status, 200);
  Query query;
  QueryResult warm;
  ASSERT_TRUE(service.try_fast(kSmallQuery, &query, &warm));
  EXPECT_EQ(warm.status, 200);
  EXPECT_EQ(warm.cache_hits, warm.cells);
}

// --- the ServerConfig construction path ---------------------------------------

TEST(ServerConfig, FluentBuilderReachesBothOptionStructs) {
  ServerConfig config;
  config.host("0.0.0.0")
      .port(9999)
      .reuse_port(true)
      .event_threads(3)
      .compute_threads(5)
      .max_inflight(11)
      .max_connections(77)
      .retry_after(9)
      .poll_interval_ms(50)
      .journal("a.journal")
      .cache_capacity(1234)
      .memo_capacity(55)
      .max_cells_per_request(7)
      .sweep_threads(2)
      .batch_width(16)
      .coalesce(false)
      .coalesce_cell_limit(33);
  EXPECT_EQ(config.reactor().host, "0.0.0.0");
  EXPECT_EQ(config.reactor().port, 9999);
  EXPECT_TRUE(config.reactor().reuse_port);
  EXPECT_EQ(config.reactor().event_threads, 3u);
  EXPECT_EQ(config.reactor().compute_threads, 5u);
  EXPECT_EQ(config.reactor().max_inflight, 11u);
  EXPECT_EQ(config.reactor().max_connections, 77u);
  EXPECT_EQ(config.reactor().retry_after_seconds, 9);
  EXPECT_EQ(config.reactor().poll_interval_ms, 50);
  EXPECT_EQ(config.service().journal_path, "a.journal");
  EXPECT_EQ(config.service().cache_capacity, 1234u);
  EXPECT_EQ(config.service().memo_capacity, 55u);
  EXPECT_EQ(config.service().max_cells_per_request, 7u);
  EXPECT_EQ(config.service().sweep_threads, 2u);
  EXPECT_EQ(config.service().sweep_batch_width, 16u);
  EXPECT_FALSE(config.service().coalesce);
  EXPECT_EQ(config.service().coalesce_cell_limit, 33u);
}

TEST(ServerConfig, ServiceConstructedFromConfigMatchesServiceOptions) {
  ServerConfig config;
  config.max_cells_per_request(3);
  SweepService from_config(config);
  const QueryResult result =
      from_config.handle(R"({"benchmarks":["IIR Filter"]})");
  EXPECT_EQ(result.status, 422);  // the limit flowed through the builder
}

// --- single-flight hammer ---------------------------------------------------

TEST(SweepService, EightThreadHammerExecutesExactlyOneSweep) {
  constexpr unsigned kThreads = 8;
  ServiceOptions options;
  std::atomic<bool> release{false};
  SweepService* service_ptr = nullptr;
  // The hook runs inside the single-flight leader. Holding it until all
  // seven followers are registered as waiters makes "exactly one sweep"
  // deterministic rather than a lucky interleaving.
  options.compute_hook = [&] {
    while (!release.load(std::memory_order_acquire)) {
      if (service_ptr != nullptr &&
          service_ptr->inflight_waiters() >= kThreads - 1) {
        release.store(true, std::memory_order_release);
        break;
      }
      std::this_thread::yield();
    }
  };
  SweepService service(options);
  service_ptr = &service;

  QueryResult rejection;
  const auto query = parse_query(kSmallQuery, &rejection);
  ASSERT_TRUE(query.has_value());

  std::vector<QueryResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = service.execute(*query); });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(service.sweeps_executed(), 1u);
  unsigned coalesced = 0;
  for (const QueryResult& result : results) {
    ASSERT_EQ(result.status, 200) << result.error;
    EXPECT_EQ(result.body, results[0].body);
    if (result.coalesced) ++coalesced;
  }
  EXPECT_EQ(coalesced, kThreads - 1);
}

}  // namespace
}  // namespace csr::serve
