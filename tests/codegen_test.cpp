// Structural tests for the code generators: statement construction, shapes
// of the emitted programs, code sizes against the closed-form predictions,
// and register counts against Theorems 4.3/4.7.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/registers.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "codegen/unfolded_retimed.hpp"
#include "codesize/model.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(Statements, NodeStatementReadsPredecessorsWithDelays) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Statement s = node_statement(g, *g.find_node("C"));
  EXPECT_EQ(s.array, "C");
  EXPECT_EQ(s.offset, 0);
  ASSERT_EQ(s.sources.size(), 2u);
  EXPECT_EQ(s.sources[0].array, "A");
  EXPECT_EQ(s.sources[0].offset, 0);
  EXPECT_EQ(s.sources[1].array, "B");
  EXPECT_EQ(s.sources[1].offset, -2);
}

TEST(Statements, OpTextFollowsNamingConvention) {
  DataFlowGraph g;
  g.add_node("Mmul");
  g.add_node("Aadd");
  EXPECT_EQ(node_statement(g, 0).op_text, "*");
  EXPECT_EQ(node_statement(g, 1).op_text, "+");
}

TEST(Statements, ShiftMovesEveryOffset) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Statement s = shifted(node_statement(g, *g.find_node("C")), 2);
  EXPECT_EQ(s.offset, 2);
  EXPECT_EQ(s.sources[0].offset, 2);
  EXPECT_EQ(s.sources[1].offset, 0);
}

TEST(Statements, ArrayNamesListsEveryNode) {
  const DataFlowGraph g = benchmarks::figure4_example();
  EXPECT_EQ(array_names(g), (std::vector<std::string>{"A", "B", "C"}));
}

TEST(RegisterPlan, NamesDescendingClasses) {
  const RegisterPlan plan(std::vector<int>{0, 3, 1, 3});
  EXPECT_EQ(plan.count(), 3u);
  EXPECT_EQ(plan.classes_desc(), (std::vector<int>{3, 1, 0}));
  EXPECT_EQ(plan.reg_for(3), "p1");
  EXPECT_EQ(plan.reg_for(1), "p2");
  EXPECT_EQ(plan.reg_for(0), "p3");
  EXPECT_THROW((void)plan.reg_for(2), LogicError);
}

TEST(Original, ShapeAndSize) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const LoopProgram p = original_program(g, 10);
  EXPECT_TRUE(p.validate().empty());
  EXPECT_EQ(p.code_size(), original_size(g));
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_EQ(p.segments[0].trip_count(), 10);
  EXPECT_TRUE(p.conditional_registers().empty());
}

TEST(Original, RejectsBadTripCount) {
  EXPECT_THROW(original_program(benchmarks::figure4_example(), 0), InvalidArgument);
}

TEST(Retimed, SizeMatchesCensus) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r(std::vector<int>{3, 2, 2, 1, 0});
  const LoopProgram p = retimed_program(g, r, 50);
  EXPECT_TRUE(p.validate().empty());
  EXPECT_EQ(p.code_size(), predicted_retimed_size(g, r));
  EXPECT_EQ(p.code_size(), 5 + 15);  // L + |V|·M_r for figure 3
}

TEST(Retimed, RejectsIllegalRetimingAndShortLoops) {
  const DataFlowGraph g = benchmarks::figure3_example();
  Retiming bad(g.node_count());
  bad.set(*g.find_node("E"), 5);  // pushes D→E negative
  EXPECT_THROW(retimed_program(g, bad, 50), InvalidArgument);
  const Retiming r(std::vector<int>{3, 2, 2, 1, 0});
  EXPECT_THROW(retimed_program(g, r, 3), InvalidArgument);  // n must exceed M_r
}

TEST(RetimedCsr, SizeAndRegisters) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r(std::vector<int>{3, 2, 2, 1, 0});
  const LoopProgram p = retimed_csr_program(g, r, 50);
  EXPECT_TRUE(p.validate().empty());
  EXPECT_EQ(p.code_size(), predicted_retimed_csr_size(g, r));
  EXPECT_EQ(p.code_size(), 5 + 2 * 4);
  EXPECT_EQ(p.conditional_registers().size(), 4u);  // Theorem 4.3: |N_r|
  // One loop covering fill + steady state + drain: n + M_r trips.
  ASSERT_EQ(p.segments.size(), 2u);
  EXPECT_EQ(p.segments[1].trip_count(), 50 + 3);
}

TEST(RetimedCsr, ZeroRetimingDegeneratesGracefully) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const Retiming zero(g.node_count());
  const LoopProgram p = retimed_csr_program(g, zero, 10);
  EXPECT_TRUE(p.validate().empty());
  // Single retiming class: one register guarding everything.
  EXPECT_EQ(p.conditional_registers().size(), 1u);
  EXPECT_EQ(p.code_size(), original_size(g) + 2);
}

TEST(Unfolded, SizeMatchesPrediction) {
  const DataFlowGraph g = benchmarks::figure4_example();
  for (const int f : {1, 2, 3, 4}) {
    for (const std::int64_t n : {7, 9, 10}) {
      const LoopProgram p = unfolded_program(g, f, n);
      EXPECT_TRUE(p.validate().empty());
      EXPECT_EQ(p.code_size(), predicted_unfolded_size(g, f, n)) << f << ' ' << n;
    }
  }
}

TEST(Unfolded, RemainderSegmentsAreStraightLine) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const LoopProgram p = unfolded_program(g, 3, 10);  // 10 mod 3 = 1 remainder
  ASSERT_EQ(p.segments.size(), 2u);
  EXPECT_EQ(p.segments[0].step, 3);
  EXPECT_EQ(p.segments[0].trip_count(), 3);
  EXPECT_TRUE(p.segments[1].straight_line());
  EXPECT_EQ(p.segments[1].begin, 10);
}

TEST(UnfoldedCsr, OneRegisterOnly) {
  const DataFlowGraph g = benchmarks::figure4_example();
  for (const int f : {2, 3, 5}) {
    const LoopProgram p = unfolded_csr_program(g, f, 11);
    EXPECT_TRUE(p.validate().empty());
    EXPECT_EQ(p.conditional_registers().size(), 1u);
    EXPECT_EQ(p.code_size(), predicted_unfolded_csr_size(g, f));
  }
}

TEST(RetimedUnfolded, SizeMatchesPrediction) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  for (const int f : {2, 3, 4}) {
    for (const std::int64_t n : {20, 23, 25}) {
      const LoopProgram p = retimed_unfolded_program(g, r, f, n);
      EXPECT_TRUE(p.validate().empty());
      EXPECT_EQ(p.code_size(), predicted_retimed_unfolded_size(g, r, f, n))
          << f << ' ' << n;
    }
  }
}

TEST(RetimedUnfoldedCsr, RegistersMatchTheorem47) {
  // Theorem 4.7: the retimed-unfolded CSR form uses exactly as many
  // registers as the retimed CSR form, for every unfolding factor.
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const std::size_t base =
        retimed_csr_program(g, r, 101).conditional_registers().size();
    for (const int f : {2, 3, 4}) {
      const LoopProgram p = retimed_unfolded_csr_program(g, r, f, 101);
      EXPECT_TRUE(p.validate().empty()) << info.name;
      EXPECT_EQ(p.conditional_registers().size(), base) << info.name << " f=" << f;
      EXPECT_EQ(p.code_size(), predicted_retimed_unfolded_csr_size(g, r, f))
          << info.name;
    }
  }
}

TEST(RetimedUnfoldedCsr, QheadAlignsLoopStart) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r(std::vector<int>{3, 2, 2, 1, 0});  // M_r = 3
  const LoopProgram p = retimed_unfolded_csr_program(g, r, 2, 21);
  // Q_head = (2 − 3 mod 2) mod 2 = 1, so the loop starts at 1 − 3 − 1 = −3.
  ASSERT_EQ(p.segments.size(), 2u);
  EXPECT_EQ(p.segments[1].begin, -3);
  EXPECT_EQ(p.segments[1].step, 2);
}

TEST(UnfoldedRetimed, SizeMatchesTheorem44) {
  const DataFlowGraph g = benchmarks::iir_filter();
  for (const int f : {2, 3}) {
    const Unfolding u(g, f);
    const OptimalRetiming opt = minimum_period_retiming(u.graph());
    for (const std::int64_t n : {30, 31, 32}) {
      const LoopProgram p = unfolded_retimed_program(u, opt.retiming, n);
      EXPECT_TRUE(p.validate().empty());
      EXPECT_EQ(p.code_size(), predicted_unfolded_retimed_size(u, opt.retiming, n));
      EXPECT_EQ(p.code_size(),
                paper_unfolded_retimed_size(original_size(g),
                                            opt.retiming.normalized().max_value(), f, n));
    }
  }
}

TEST(UnfoldedRetimedCsr, MayNeedMoreRegistersThanRetimedUnfolded) {
  // Section 3.4: copies of one node can be retimed to different depths, so
  // the unfold-first CSR form needs at least as many registers — and on the
  // benchmarks strictly more.
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const Unfolding u(g, 3);
    const OptimalRetiming uopt = minimum_period_retiming(u.graph());
    const LoopProgram first = retimed_unfolded_csr_program(g, r, 3, 101);
    const LoopProgram second = unfolded_retimed_csr_program(u, uopt.retiming, 101);
    EXPECT_TRUE(second.validate().empty()) << info.name;
    EXPECT_GE(second.conditional_registers().size(),
              first.conditional_registers().size())
        << info.name;
    EXPECT_EQ(second.code_size(), predicted_unfolded_retimed_csr_size(u, uopt.retiming))
        << info.name;
  }
}

TEST(UnfoldedRetimed, RequiresEnoughTrips) {
  const DataFlowGraph g = benchmarks::iir_filter();
  const Unfolding u(g, 3);
  const OptimalRetiming opt = minimum_period_retiming(u.graph());
  const int depth = opt.retiming.normalized().max_value();
  EXPECT_THROW(unfolded_retimed_program(u, opt.retiming, 3 * depth), InvalidArgument);
}

}  // namespace
}  // namespace csr
