// Tests for the exact iteration-bound computation: known graphs, the
// didactic and benchmark graphs, and a randomized cross-check of the
// parametric search against brute-force cycle enumeration.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/iteration_bound.hpp"
#include "dfg/random.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(IterationBound, AcyclicGraphHasNoBound) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  EXPECT_FALSE(iteration_bound(g).has_value());
  EXPECT_FALSE(iteration_bound_by_enumeration(g).has_value());
}

TEST(IterationBound, SimpleCycle) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 2);
  const NodeId b = g.add_node("B", 3);
  g.add_edge(a, b, 1);
  g.add_edge(b, a, 1);
  EXPECT_EQ(iteration_bound(g), Rational(5, 2));
}

TEST(IterationBound, PicksMaximumCycleRatio) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  const NodeId c = g.add_node("C");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 1);  // cycle AB: 2/1
  g.add_edge(b, c, 0);
  g.add_edge(c, b, 3);  // cycle BC: 2/3
  EXPECT_EQ(iteration_bound(g), Rational(2));
}

TEST(IterationBound, SelfLoop) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 5);
  g.add_edge(a, a, 2);
  EXPECT_EQ(iteration_bound(g), Rational(5, 2));
}

TEST(IterationBound, ThrowsOnZeroDelayCycle) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_THROW((void)iteration_bound(g), InvalidArgument);
  EXPECT_THROW((void)iteration_bound_by_enumeration(g), InvalidArgument);
}

TEST(IterationBound, HasCycleRatioAbovePrimitive) {
  DataFlowGraph g;
  const NodeId a = g.add_node("A", 2);
  g.add_edge(a, a, 1);  // ratio 2
  EXPECT_TRUE(has_cycle_ratio_above(g, Rational(3, 2)));
  EXPECT_FALSE(has_cycle_ratio_above(g, Rational(2)));
  EXPECT_FALSE(has_cycle_ratio_above(g, Rational(5, 2)));
}

TEST(IterationBound, Figure1Example) {
  EXPECT_EQ(iteration_bound(benchmarks::figure1_example()), Rational(1));
}

TEST(IterationBound, Figure4ExampleIsFractional) {
  // Cycle A→B→A: time 2, delay 3 — bound 2/3; the C tap adds B→C zero-delay
  // but no cycle.
  EXPECT_EQ(iteration_bound(benchmarks::figure4_example()), Rational(2, 3));
}

TEST(IterationBound, ChaoShaExample) {
  EXPECT_EQ(iteration_bound(benchmarks::chao_sha_example()), Rational(27, 2));
}

struct BenchmarkBound {
  const char* name;
  Rational bound;
};

class BenchmarkBoundTest : public ::testing::TestWithParam<BenchmarkBound> {};

TEST_P(BenchmarkBoundTest, MatchesDocumentedBound) {
  const auto& info = benchmarks::all_graphs();
  const auto it = std::find_if(info.begin(), info.end(), [&](const auto& b) {
    return b.name == std::string(GetParam().name);
  });
  ASSERT_NE(it, info.end());
  EXPECT_EQ(iteration_bound(it->factory()), GetParam().bound);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkBoundTest,
    ::testing::Values(BenchmarkBound{"IIR Filter", Rational(3)},
                      BenchmarkBound{"Differential Equation", Rational(3)},
                      BenchmarkBound{"All-pole Filter", Rational(3)},
                      BenchmarkBound{"Elliptical Filter", Rational(8, 3)},
                      BenchmarkBound{"4-stage Lattice Filter", Rational(8, 3)},
                      BenchmarkBound{"Volterra Filter", Rational(3)}),
    [](const auto& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(IterationBound, MatchesEnumerationOnRandomGraphs) {
  SplitMix64 rng(20260705);
  RandomDfgOptions options;
  options.max_nodes = 9;
  options.max_time = 4;
  for (int trial = 0; trial < 200; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const auto fast = iteration_bound(g);
    const auto slow = iteration_bound_by_enumeration(g);
    ASSERT_EQ(fast.has_value(), slow.has_value()) << "trial " << trial;
    if (fast) {
      EXPECT_EQ(*fast, *slow) << "trial " << trial << "\n" << g.name();
    }
  }
}

TEST(IterationBound, LargeRandomGraphsDoNotOverflow) {
  SplitMix64 rng(99);
  RandomDfgOptions options;
  options.min_nodes = 30;
  options.max_nodes = 40;
  options.max_time = 20;
  options.max_delay = 6;
  for (int trial = 0; trial < 10; ++trial) {
    const DataFlowGraph g = random_dfg(rng, options);
    const auto bound = iteration_bound(g);
    ASSERT_TRUE(bound.has_value());
    EXPECT_GT(*bound, Rational(0));
    EXPECT_LE(*bound, Rational(g.total_time()));
  }
}

}  // namespace
}  // namespace csr
