// Tests for the exact branch-and-bound retiming engine (retiming/exact.hpp):
// agreement with the heuristic on the six paper benchmarks (gap == 0), the
// heuristic-period ≥ exact-period property on random DFGs, the log2
// termination bound on branch-and-bound nodes, the storage-minimal secondary
// objective, and the overflow hardening of the Bellman–Ford core the engine
// branches over.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "dfg/random.hpp"
#include "retiming/constraints.hpp"
#include "retiming/exact.hpp"
#include "retiming/min_storage.hpp"
#include "retiming/opt.hpp"
#include "support/rng.hpp"

namespace csr {
namespace {

std::uint64_t log2_ceil(std::uint64_t n) {
  std::uint64_t bits = 0;
  while ((1ull << bits) < n) ++bits;
  return bits;
}

// --- agreement with the heuristic --------------------------------------------

TEST(ExactRetiming, GapIsZeroOnAllSixPaperBenchmarks) {
  // The heuristic OPT search is provably period-optimal for pure retiming,
  // so the exact engine must certify every paper benchmark at the same
  // period — the optimality_gap column is 0 across Tables 1–4.
  for (const auto& info : benchmarks::table_benchmarks()) {
    SCOPED_TRACE(info.name);
    const DataFlowGraph g = info.factory();
    const OptimalRetiming heuristic = minimum_period_retiming(g);
    const ExactRetiming exact = exact_optimal_retiming(g);
    EXPECT_EQ(exact.period, heuristic.period);
    EXPECT_TRUE(is_legal_retiming(g, exact.retiming));
    EXPECT_LE(cycle_period(apply_retiming(g, exact.retiming)), exact.period);
  }
}

TEST(ExactRetiming, HeuristicNeverBeatsExactOnRandomGraphs) {
  SplitMix64 rng(0xE4AC7ull);
  RandomDfgOptions options;
  for (int trial = 0; trial < 150; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    const DataFlowGraph g = random_dfg(rng, options);
    const OptimalRetiming heuristic = minimum_period_retiming(g);
    const ExactRetiming exact = exact_optimal_retiming(g);
    // The exact period is a certified minimum: nothing beats it, and the
    // (also-optimal) heuristic must land exactly on it.
    EXPECT_GE(heuristic.period, exact.period);
    EXPECT_EQ(heuristic.period, exact.period);
    // The certificate respects the rate bound.
    if (const auto bound = iteration_bound(g)) {
      EXPECT_GE(exact.period, bound->ceil());
    }
  }
}

// --- branch-and-bound mechanics ----------------------------------------------

TEST(ExactRetiming, NodeCountRespectsTheLog2TerminationBound) {
  SplitMix64 rng(0xB0B5ull);
  RandomDfgOptions options;
  for (int trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    const DataFlowGraph g = random_dfg(rng, options);
    const ExactRetiming exact = exact_optimal_retiming(g);
    const ExactRetimingStats& s = exact.stats;
    ASSERT_GT(s.candidates_total, 0u);
    // One subtree dies per solve, plus at most one witness re-solve at the
    // collapsed interval: ≤ ⌈log2 K⌉ + 1 nodes (docs/THEORY.md).
    const std::uint64_t surviving = s.candidates_total - s.candidates_pruned;
    EXPECT_LE(s.nodes_explored, log2_ceil(surviving) + 1);
    EXPECT_LE(s.backtracks, s.nodes_explored);
    EXPECT_LE(s.candidates_pruned, s.candidates_total);
  }
}

TEST(ExactRetiming, IterationBoundPruneNeverCutsTheOptimum) {
  // Pruning candidates below ⌈B⌉ is safe: the optimum is itself ≥ ⌈B⌉.
  for (const auto& info : benchmarks::table_benchmarks()) {
    SCOPED_TRACE(info.name);
    const DataFlowGraph g = info.factory();
    const ExactRetiming exact = exact_optimal_retiming(g);
    if (const auto bound = iteration_bound(g)) {
      EXPECT_GE(exact.period, bound->ceil());
    }
  }
}

// --- secondary objective -----------------------------------------------------

TEST(ExactRetiming, WitnessIsStorageMinimalAtTheOptimalPeriod) {
  SplitMix64 rng(0x5709A6Eull);
  RandomDfgOptions options;
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    const DataFlowGraph g = random_dfg(rng, options);
    const ExactRetiming exact = exact_optimal_retiming(g);
    EXPECT_EQ(exact.total_storage, total_delays_after(g, exact.retiming));
    // min_storage_retiming is the storage optimum at this period; the
    // engine's witness must match its storage exactly.
    const auto reference = min_storage_retiming(g, exact.period);
    ASSERT_TRUE(reference.has_value());
    EXPECT_EQ(exact.total_storage, total_delays_after(g, *reference));
    // And no worse than the heuristic pipeline's witness.
    const OptimalRetiming heuristic = minimum_period_retiming(g);
    EXPECT_LE(exact.total_storage, total_delays_after(g, heuristic.retiming));
  }
}

TEST(ExactRetiming, PlainWitnessModeSkipsStorageMinimization) {
  const DataFlowGraph g = benchmarks::table_benchmarks().front().factory();
  ExactRetimingOptions options;
  options.minimize_storage = false;
  const ExactRetiming exact = exact_optimal_retiming(g, options);
  EXPECT_TRUE(is_legal_retiming(g, exact.retiming));
  EXPECT_LE(cycle_period(apply_retiming(g, exact.retiming)), exact.period);
  EXPECT_EQ(exact.period, exact_minimum_period(g));
}

// --- overflow hardening of the Bellman–Ford core -----------------------------

TEST(SolveDifferenceConstraints, AdversarialWeightsNearInt64ExtremesAreSafe) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

  {
    // Negative cycle whose relaxations would underflow int64 within two
    // passes: x1 − x0 ≤ kMin + 1, x0 − x1 ≤ −2. Must report infeasible, not
    // wrap around.
    const auto solution =
        solve_difference_constraints(2, {{0, 1, kMin + 1}, {1, 0, -2}});
    EXPECT_FALSE(solution.has_value());
  }
  {
    // Feasible but extreme: a single huge negative bound is satisfiable and
    // its Bellman–Ford solution is exactly that bound.
    const auto solution = solve_difference_constraints(2, {{0, 1, kMin + 1}});
    ASSERT_TRUE(solution.has_value());
    EXPECT_EQ((*solution)[0], 0);
    EXPECT_EQ((*solution)[1], kMin + 1);
    EXPECT_LE((*solution)[1] - (*solution)[0], kMin + 1);
  }
  {
    // A chain of huge negative bounds whose sum leaves int64: feasible in
    // the rationals, unrepresentable in the result vector — the explicit
    // infeasibility signal, never UB.
    const auto solution = solve_difference_constraints(
        3, {{0, 1, kMin + 1}, {1, 2, kMin + 1}});
    EXPECT_FALSE(solution.has_value());
  }
  {
    // Huge positive bounds never bind (distances start at 0 and only
    // decrease), even mixed with normal constraints.
    const auto solution = solve_difference_constraints(
        3, {{0, 1, kMax}, {1, 2, -5}, {0, 2, kMax - 1}});
    ASSERT_TRUE(solution.has_value());
    EXPECT_LE((*solution)[2] - (*solution)[1], -5);
  }
  {
    // Zero-length negative cycle via a self-loop-style pair at the extreme.
    const auto solution =
        solve_difference_constraints(2, {{0, 1, kMin + 1}, {1, 0, kMin + 1}});
    EXPECT_FALSE(solution.has_value());
  }
}

TEST(SolveDifferenceConstraints, StillSolvesOrdinarySystems) {
  // Regression guard: the hardened path must not change ordinary results.
  const auto solution = solve_difference_constraints(
      3, {{0, 1, 2}, {1, 2, -1}, {0, 2, 0}});
  ASSERT_TRUE(solution.has_value());
  EXPECT_LE((*solution)[1] - (*solution)[0], 2);
  EXPECT_LE((*solution)[2] - (*solution)[1], -1);
  EXPECT_LE((*solution)[2] - (*solution)[0], 0);
}

}  // namespace
}  // namespace csr
