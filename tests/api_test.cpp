// Tests for the stable driver API (api/csr.hpp, driver/config.hpp): the
// SweepConfig fluent builder, the SweepRun contract of run_sweep(), and the
// byte-determinism of default exports with tracing on vs off. (The
// deprecated pre-config entry points completed their removal cycle; their
// shim-equality tests left with them.)

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/csr.hpp"

namespace csr::driver {
namespace {

/// A small, fast grid: one benchmark, three transforms, one factor.
SweepConfig small_config() {
  return SweepConfig()
      .benchmarks({"IIR Filter"})
      .trip_counts({21})
      .transforms({Transform::kOriginal, Transform::kRetimed, Transform::kRetimedCsr})
      .factors({})
      .threads(2);
}

TEST(SweepConfig, FluentSettersFillGridAndOptions) {
  const SweepConfig config = SweepConfig()
                                 .benchmarks({"A"})
                                 .add_benchmark("B")
                                 .trip_counts({7, 11})
                                 .engines({Engine::kRotation})
                                 .exec_engines({ExecEngine::kMap})
                                 .transforms({Transform::kOriginal})
                                 .factors({2, 4})
                                 .threads(3)
                                 .verify(false)
                                 .journal("j.journal")
                                 .cell_budget(5)
                                 .steal_seed(99);
  EXPECT_EQ(config.grid().benchmarks, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(config.grid().trip_counts, (std::vector<std::int64_t>{7, 11}));
  EXPECT_EQ(config.grid().engines, (std::vector<Engine>{Engine::kRotation}));
  EXPECT_EQ(config.grid().exec_engines, (std::vector<ExecEngine>{ExecEngine::kMap}));
  EXPECT_EQ(config.options().threads, 3u);
  EXPECT_FALSE(config.options().verify);
  EXPECT_EQ(config.options().journal_path, "j.journal");
  EXPECT_EQ(config.options().cell_budget, 5u);
  EXPECT_EQ(config.options().steal_seed, 99u);
  EXPECT_FALSE(config.has_explicit_cells());
  // cells() is the grid product: 2 benchmarks × 2 trip counts × 1 transform.
  EXPECT_EQ(config.cells().size(), 4u);
}

TEST(SweepConfig, CopyThenModifyLeavesTheBaseUntouched) {
  const SweepConfig base = small_config();
  const SweepConfig variant = SweepConfig(base).threads(7).journal("other");
  EXPECT_EQ(base.options().threads, 2u);
  EXPECT_TRUE(base.options().journal_path.empty());
  EXPECT_EQ(variant.options().threads, 7u);
  EXPECT_EQ(variant.options().journal_path, "other");
  EXPECT_EQ(variant.grid().benchmarks, base.grid().benchmarks);
}

TEST(SweepConfig, ExplicitCellsBypassTheGrid) {
  SweepCell cell;
  cell.benchmark = "IIR Filter";
  cell.transform = Transform::kOriginal;
  cell.n = 21;
  const SweepConfig config =
      SweepConfig().benchmarks({"A", "B", "C"}).cells({cell, cell});
  EXPECT_TRUE(config.has_explicit_cells());
  ASSERT_EQ(config.cells().size(), 2u);  // not the 3-benchmark grid
  EXPECT_EQ(config.cells()[0].benchmark, "IIR Filter");

  const SweepRun run = run_sweep(config);
  ASSERT_EQ(run.results.size(), 2u);
  EXPECT_TRUE(run.results[0].feasible) << run.results[0].error;
  EXPECT_EQ(run.stats.total_cells, 2u);
}

TEST(RunSweep, ResultsMatchCellOrderAndStatsAccount) {
  const SweepConfig config = small_config();
  const std::vector<SweepCell> cells = config.cells();
  const SweepRun run = run_sweep(config);
  ASSERT_EQ(run.results.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(run.results[i].cell.benchmark, cells[i].benchmark) << i;
    EXPECT_EQ(run.results[i].cell.transform, cells[i].transform) << i;
  }
  EXPECT_EQ(run.stats.total_cells, cells.size());
  EXPECT_EQ(run.stats.executed, cells.size());  // no journal, nothing cached
  EXPECT_EQ(run.stats.cache_hits, 0u);
}

TEST(RunSweep, DefaultExportsAreByteIdenticalWithTracingOnAndOff) {
  // The headline determinism guarantee of docs/OBSERVABILITY.md: turning the
  // tracer on may never change what a sweep computes or exports.
  const SweepConfig config = small_config();
  auto& tracer = observe::Tracer::global();
  tracer.set_enabled(false);
  const SweepRun off = run_sweep(config);

  tracer.clear();
  tracer.set_enabled(true);
  const SweepRun on = run_sweep(config);
  const std::size_t traced = tracer.event_count();
  tracer.set_enabled(false);
  tracer.clear();

  EXPECT_EQ(to_csv(off.results), to_csv(on.results));
  EXPECT_EQ(to_json(off.results), to_json(on.results));
  // The traced run actually recorded the sweep: at least one run_sweep span
  // plus one evaluate_cell span per cell.
  EXPECT_GT(traced, config.cells().size());
}

TEST(RunSweep, TimingFieldsAppearOnlyWhenOptedIn) {
  const SweepRun run = run_sweep(small_config());
  const std::string plain = to_json(run.results);
  EXPECT_EQ(plain.find("\"exec_seconds\""), std::string::npos);
  ExportOptions timing;
  timing.include_timing = true;
  const std::string timed = to_json(run.results, timing);
  EXPECT_NE(timed.find("\"exec_seconds\""), std::string::npos);
}

}  // namespace
}  // namespace csr::driver
