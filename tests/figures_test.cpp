// Reproductions of the paper's worked figures: the Figure 1 retiming, the
// Figure 2 schedules, the Figure 3 pipelined/CSR code (including the n+3
// trip count and register initializations), and the Figure 4–7 unfolding
// story.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/retimed_unfolded.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "loopir/printer.hpp"
#include "retiming/opt.hpp"
#include "schedule/schedule.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

TEST(Figure1, RetimingMovesTheDelay) {
  const DataFlowGraph g = benchmarks::figure1_example();
  EXPECT_EQ(cycle_period(g), 2);
  Retiming r(g.node_count());
  r.set(*g.find_node("A"), 1);
  const DataFlowGraph retimed = apply_retiming(g, r);
  EXPECT_EQ(cycle_period(retimed), 1);  // "schedule length reduced to one"
}

TEST(Figure2, PipelinedScheduleIsOneStep) {
  // Figure 2(b): after full pipelining, all five nodes execute in one
  // control step of the retimed graph.
  const DataFlowGraph g = benchmarks::figure3_example();
  const OptimalRetiming opt = minimum_period_retiming(g);
  const StaticSchedule s = asap_schedule(apply_retiming(g, opt.retiming));
  EXPECT_EQ(s.length(apply_retiming(g, opt.retiming)), 1);
  EXPECT_EQ(s.nodes_starting_at(0).size(), 5u);
}

TEST(Figure3, PaperRetimingValues) {
  // The paper pipelines the loop with r = (A:3, B:2, C:2, D:1, E:0) — four
  // distinct values, hence four conditional registers.
  const DataFlowGraph g = benchmarks::figure3_example();
  const OptimalRetiming opt = minimum_period_retiming(g);
  EXPECT_EQ(opt.period, 1);
  EXPECT_EQ(opt.retiming[*g.find_node("A")], 3);
  EXPECT_EQ(opt.retiming[*g.find_node("B")], 2);
  EXPECT_EQ(opt.retiming[*g.find_node("C")], 2);
  EXPECT_EQ(opt.retiming[*g.find_node("D")], 1);
  EXPECT_EQ(opt.retiming[*g.find_node("E")], 0);
}

TEST(Figure3, ExpandedCodeHasEightProlasEpilogueStatements) {
  // Figure 3(a): prologue A,A,B,C,A,B,C,D (8 statements), epilogue
  // E,D,E,B,C,D,E (7 statements).
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  const PipelineExpansion census = pipeline_expansion(g, r);
  EXPECT_EQ(census.prologue_statements, 8);
  EXPECT_EQ(census.epilogue_statements, 7);
  EXPECT_EQ(retimed_program(g, r, 50).code_size(), 5 + 15);
}

TEST(Figure3, CsrCodeShape) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  const std::int64_t n = 50;
  const LoopProgram p = retimed_csr_program(g, r, n);
  // Four registers; p1 guards A (init 0), p4 guards E (init 3).
  EXPECT_EQ(p.conditional_registers().size(), 4u);
  const std::string source = to_source(p);
  EXPECT_NE(source.find("p1 = setup 0 : -n;"), std::string::npos);
  EXPECT_NE(source.find("p2 = setup 1 : -n;"), std::string::npos);
  EXPECT_NE(source.find("p3 = setup 2 : -n;"), std::string::npos);
  EXPECT_NE(source.find("p4 = setup 3 : -n;"), std::string::npos);
  EXPECT_NE(source.find("(p1) A[i+3] = E[i-1];"), std::string::npos);
  EXPECT_NE(source.find("(p4) E[i] = D[i];"), std::string::npos);
  // "the loop will now be executed for n + 3 times"
  EXPECT_EQ(p.segments.back().trip_count(), n + 3);
}

TEST(Figure3, CsrSemanticsMatchExpanded) {
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  const auto diffs = compare_programs(retimed_program(g, r, 31),
                                      retimed_csr_program(g, r, 31), array_names(g));
  EXPECT_TRUE(diffs.empty());
}

TEST(Figure5, UnfoldedCodeSizes) {
  // Figure 5(a): the 3-statement loop unfolded by 3 with n mod 3 = 2 has
  // 9 + 6 statements; the CSR form (5(b), corrected) needs one register,
  // 3 decrements and 1 setup: 13 instructions.
  const DataFlowGraph g = benchmarks::figure4_example();
  const std::int64_t n = 11;  // 11 mod 3 == 2
  EXPECT_EQ(unfolded_program(g, 3, n).code_size(), 15);
  const LoopProgram csr = unfolded_csr_program(g, 3, n);
  EXPECT_EQ(csr.code_size(), 13);
  EXPECT_EQ(csr.conditional_registers().size(), 1u);
}

TEST(Figure5, CsrHandlesEveryRemainder) {
  // The paper's own Figure 5(b) mis-handles n mod f = 2 (one decrement of f
  // per trip); the per-copy decrement form must be exact for every
  // remainder class.
  const DataFlowGraph g = benchmarks::figure4_example();
  for (std::int64_t n = 7; n <= 12; ++n) {
    const auto diffs = compare_programs(original_program(g, n),
                                        unfolded_csr_program(g, 3, n), array_names(g));
    EXPECT_TRUE(diffs.empty()) << "n = " << n;
  }
}

TEST(Figure7, RetimedUnfoldedCsrUsesTwoRegisters) {
  // Figures 6/7 retime the loop (depth 1) and unfold by 3; the CSR form
  // needs two conditional registers (classes r=1 and r=0), matching the
  // paper's p1/p2.
  const DataFlowGraph g = benchmarks::figure4_example();
  Retiming r(g.node_count());
  r.set(*g.find_node("A"), 1);
  r.set(*g.find_node("B"), 1);  // legal variant of the paper's r(B)=1
  ASSERT_TRUE(is_legal_retiming(g, r));
  const LoopProgram p = retimed_unfolded_csr_program(g, r, 3, 9);
  EXPECT_EQ(p.conditional_registers().size(), 2u);
  // Per-copy decrements: 2 registers × 3 copies + 2 setups + 9 statements.
  EXPECT_EQ(p.code_size(), 9 + 6 + 2);
  const auto diffs =
      compare_programs(original_program(g, 9), p, array_names(g));
  EXPECT_TRUE(diffs.empty());
}

TEST(Figure7, FirstTripExecutesOnlyPrologueNodes) {
  // Figure 7(c): with n = 9, the first conditional trip computes only the
  // retimed-forward nodes (the prologue hidden in the loop); every node
  // still ends up executed exactly 9 times.
  const DataFlowGraph g = benchmarks::figure4_example();
  Retiming r(g.node_count());
  r.set(*g.find_node("A"), 1);
  r.set(*g.find_node("B"), 1);
  const LoopProgram p = retimed_unfolded_csr_program(g, r, 3, 9);
  const Machine m = run_program(p);
  for (const std::string& array : array_names(g)) {
    EXPECT_EQ(m.total_writes(array), 9) << array;
  }
  // Disabled slots exist (the hidden prologue/epilogue).
  EXPECT_GT(m.disabled_statements(), 0);
}

TEST(Figures, PrintedOriginalLoopMatchesPaperText) {
  const DataFlowGraph g = benchmarks::figure4_example();
  const std::string source = to_source(original_program(g, 100));
  EXPECT_NE(source.find("A[i] = B[i-3];"), std::string::npos);
  EXPECT_NE(source.find("B[i] = A[i];"), std::string::npos);
  EXPECT_NE(source.find("C[i] = B[i];"), std::string::npos);
}

}  // namespace
}  // namespace csr
