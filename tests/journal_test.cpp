// The crash-safe result journal (support/journal.hpp): escaping, replay,
// last-writer-wins, and — the point of the design — tolerance of torn and
// corrupt records, which are exactly what a SIGKILLed sweep leaves behind.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "support/hash.hpp"
#include "support/journal.hpp"

namespace csr {
namespace {

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
  }
  ~ScopedFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

TEST(JournalEscape, RoundTripsControlCharacters) {
  const std::string hostile = "plain \\ back\tslash\nnew\rline \x1f unit";
  const std::string escaped = journal_escape(hostile);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\r'), std::string::npos);
  const auto back = journal_unescape(escaped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, hostile);
}

TEST(JournalEscape, RejectsMalformedEscapes) {
  EXPECT_FALSE(journal_unescape("trailing\\").has_value());
  EXPECT_FALSE(journal_unescape("unknown\\q").has_value());
  EXPECT_TRUE(journal_unescape("fine\\\\").has_value());
}

TEST(ResultJournal, AppendLookupAndReplay) {
  const ScopedFile file(temp_path("csr_journal_replay.tsv"));
  {
    ResultJournal journal;
    ASSERT_TRUE(journal.open(file.path()));
    EXPECT_TRUE(journal.append("k1", "payload one"));
    EXPECT_TRUE(journal.append("k2", "tab\there\nand newline"));
    EXPECT_EQ(journal.size(), 2u);
    const auto hit = journal.lookup("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "payload one");
    EXPECT_FALSE(journal.lookup("missing").has_value());
  }
  // A fresh open replays everything the previous owner flushed.
  ResultJournal replay;
  ASSERT_TRUE(replay.open(file.path()));
  EXPECT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay.dropped_records(), 0u);
  const auto k2 = replay.lookup("k2");
  ASSERT_TRUE(k2.has_value());
  EXPECT_EQ(*k2, "tab\there\nand newline");
}

TEST(ResultJournal, DuplicateKeysResolveLastWriterWins) {
  const ScopedFile file(temp_path("csr_journal_lww.tsv"));
  {
    ResultJournal journal;
    ASSERT_TRUE(journal.open(file.path()));
    EXPECT_TRUE(journal.append("k", "old"));
    EXPECT_TRUE(journal.append("k", "new"));
    EXPECT_EQ(journal.size(), 1u);
    EXPECT_EQ(*journal.lookup("k"), "new");
  }
  ResultJournal replay;
  ASSERT_TRUE(replay.open(file.path()));
  EXPECT_EQ(*replay.lookup("k"), "new");
}

TEST(ResultJournal, TornTailRecordIsDroppedOnOpen) {
  // A process killed mid-append leaves a partial final line; open() must
  // keep every complete record before it and count exactly one drop.
  const ScopedFile file(temp_path("csr_journal_torn.tsv"));
  {
    ResultJournal journal;
    ASSERT_TRUE(journal.open(file.path()));
    ASSERT_TRUE(journal.append("good1", "payload"));
    ASSERT_TRUE(journal.append("good2", "payload"));
  }
  {
    std::ofstream out(file.path(), std::ios::app | std::ios::binary);
    out << "torn-key\t0123456789abcdef\ttruncated-paylo";  // no newline, bad sum
  }
  ResultJournal replay;
  ASSERT_TRUE(replay.open(file.path()));
  EXPECT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay.dropped_records(), 1u);
  EXPECT_TRUE(replay.lookup("good1").has_value());
  EXPECT_FALSE(replay.lookup("torn-key").has_value());
}

TEST(ResultJournal, ChecksumMismatchIsDroppedOnOpen) {
  // Bit rot (or hand editing) must degrade to a cache miss, never to a
  // silently wrong replay.
  const ScopedFile file(temp_path("csr_journal_sum.tsv"));
  {
    ResultJournal journal;
    ASSERT_TRUE(journal.open(file.path()));
    ASSERT_TRUE(journal.append("victim", "original payload"));
    ASSERT_TRUE(journal.append("witness", "untouched"));
  }
  // Flip a payload byte on disk, keeping the record well-formed.
  std::string contents;
  {
    std::ifstream in(file.path(), std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto at = contents.find("original");
  ASSERT_NE(at, std::string::npos);
  contents[at] = 'O';
  {
    std::ofstream out(file.path(), std::ios::trunc | std::ios::binary);
    out << contents;
  }
  ResultJournal replay;
  ASSERT_TRUE(replay.open(file.path()));
  EXPECT_EQ(replay.dropped_records(), 1u);
  EXPECT_FALSE(replay.lookup("victim").has_value());
  EXPECT_TRUE(replay.lookup("witness").has_value());
}

TEST(ResultJournal, AppendWithoutOpenFailsButKeepsTheEntryInMemory) {
  // The documented degraded mode: when the disk side is unavailable the
  // append reports failure but the running sweep keeps its result cached
  // in memory — persistence degrades, correctness doesn't.
  ResultJournal journal;
  EXPECT_FALSE(journal.is_open());
  EXPECT_FALSE(journal.append("k", "v"));
  const auto hit = journal.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "v");
}

TEST(ResultJournal, OpenReportsUnwritableDirectory) {
  ResultJournal journal;
  std::string error;
  EXPECT_FALSE(journal.open("/nonexistent-dir/csr.journal", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(journal.is_open());
}

TEST(ContentHasher, FieldSeparatorsPreventConcatenationCollisions) {
  // ("ab", "c") and ("a", "bc") must hash differently — the whole point of
  // the \x1f field framing under the journal keys.
  const auto h1 = ContentHasher().field("ab").field("c").value();
  const auto h2 = ContentHasher().field("a").field("bc").value();
  EXPECT_NE(h1, h2);
  EXPECT_FALSE(hex64(h1).empty());
  // Stable across calls (pure function of the fields), and integer fields
  // hash like their decimal rendering — the journal key contract.
  EXPECT_EQ(h1, ContentHasher().field("ab").field("c").value());
  EXPECT_EQ(ContentHasher().field(std::int64_t{12}).value(),
            ContentHasher().field("12").value());
}

}  // namespace
}  // namespace csr
