// The batch-vs-single differential harness (ctest label `batch`): batched
// execution is a pure throughput optimization, so every observable it
// produces must be bit-identical to the single-cell path it replaces.
//
// Three layers are held, each across the six paper benchmarks:
//
//   * **VM** — run_program_batch (superinstruction engine per lane) against
//     single-cell run_program on ragged lane sets, at widths {1,2,3,7,16}:
//     same array state, write discipline and execution counters per lane.
//   * **Native** — run_native_batch (one SoA kernel for the whole batch)
//     against single-cell run_native and against the VM expectation: the
//     lockstep + masked-remainder kernel must leave exactly the per-lane
//     state a width-1 kernel leaves.
//   * **Driver** — run_sweep over an explicit cell list at every width,
//     asserting the default CSV and JSON exports are byte-identical to the
//     width-1 run (the acceptance criterion of docs/ENGINES.md's batch
//     section), including verified / measured_size bits per cell.
//
// Plus the supporting invariants: the superinstruction engine agrees with
// both the resolved fast path and the map-backed reference interpreter, the
// batch shape key groups exactly the lanes one kernel may serve, and the
// compile cache keeps SoA layouts and the single-cell layout apart
// (regression: the key once ignored the layout, so a batch kernel could
// collide with the single kernel built from the same source text).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "codegen/batch_emitter.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "driver/config.hpp"
#include "driver/export.hpp"
#include "native/batch.hpp"
#include "native/compile.hpp"
#include "native/engine.hpp"
#include "retiming/opt.hpp"
#include "vm/batch.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

/// Ragged lane sizes: deliberately non-uniform and non-monotone so the
/// lockstep loop and the masked remainder loop both execute for every
/// width > 1, and cycled to 16 lanes so the widest batch is full.
std::vector<std::int64_t> ragged_ns() {
  const std::int64_t base[] = {7, 23, 11, 40, 17, 9, 31, 12};
  std::vector<std::int64_t> ns;
  for (std::size_t i = 0; i < 16; ++i) ns.push_back(base[i % std::size(base)]);
  return ns;
}

constexpr std::size_t kWidths[] = {1, 2, 3, 7, 16};

struct VariantCase {
  std::string benchmark;  ///< registry short name
  bool csr;               ///< retimed-CSR form instead of the original loop
};

std::string variant_name(const ::testing::TestParamInfo<VariantCase>& info) {
  std::string name =
      info.param.benchmark + (info.param.csr ? "_retimed_csr" : "_original");
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

std::vector<VariantCase> make_variants() {
  std::vector<VariantCase> cases;
  for (const auto& info : benchmarks::all_graphs()) {
    cases.push_back({info.name, false});
    cases.push_back({info.name, true});
  }
  return cases;
}

DataFlowGraph graph_for(const std::string& name) {
  const auto& graphs = benchmarks::all_graphs();
  const auto it = std::find_if(graphs.begin(), graphs.end(),
                               [&](const auto& b) { return b.name == name; });
  EXPECT_NE(it, graphs.end()) << name;
  return it->factory();
}

LoopProgram make_program(const DataFlowGraph& g, bool csr, std::int64_t n) {
  return csr ? retimed_csr_program(g, minimum_period_retiming(g).retiming, n)
             : original_program(g, n);
}

/// Asserts one batched lane is observably identical to its single-cell run:
/// array state, write discipline and all three execution counters.
void expect_lane_matches(const Machine& single, const StateView& lane,
                         const std::vector<std::string>& arrays, std::int64_t n,
                         const std::string& label) {
  const auto diffs = diff_observable_state(MachineView(single), lane, arrays, n);
  EXPECT_TRUE(diffs.empty()) << label << ": " << (diffs.empty() ? "" : diffs.front());
  const auto discipline = check_write_discipline(lane, arrays, n);
  EXPECT_TRUE(discipline.empty())
      << label << ": " << (discipline.empty() ? "" : discipline.front());
}

class BatchDifferentialTest : public ::testing::TestWithParam<VariantCase> {
 protected:
  void SetUp() override {
    graph_ = graph_for(GetParam().benchmark);
    arrays_ = array_names(graph_);
    for (const std::int64_t n : ragged_ns()) {
      programs_.push_back(make_program(graph_, GetParam().csr, n));
    }
  }

  DataFlowGraph graph_;
  std::vector<std::string> arrays_;
  std::vector<LoopProgram> programs_;
};

// All 16 ragged lanes share one batch shape — the grouping predicate the
// driver batches on — and a structurally different program does not.
TEST_P(BatchDifferentialTest, RaggedLanesShareOneShape) {
  const std::string key = batch_shape_key(programs_.front());
  EXPECT_FALSE(key.empty());
  for (const LoopProgram& p : programs_) {
    EXPECT_EQ(batch_shape_key(p), key) << "n=" << p.n;
    EXPECT_TRUE(batch_compatible(programs_.front(), p));
  }
  const LoopProgram other = GetParam().csr
                                ? original_program(graph_, programs_.front().n)
                                : retimed_csr_program(
                                      graph_, minimum_period_retiming(graph_).retiming,
                                      programs_.front().n);
  EXPECT_NE(batch_shape_key(other), key);
  EXPECT_FALSE(batch_compatible(programs_.front(), other));
}

// The superinstruction engine agrees with the resolved fast path and the
// map-backed reference interpreter, counters included.
TEST_P(BatchDifferentialTest, SuperinstructionEngineMatchesFastAndReference) {
  for (const LoopProgram& p : programs_) {
    const Machine fast = run_program(p, ExecMode::kFast);
    const Machine super = run_program(p, ExecMode::kSuper);
    const Machine ref = run_program(p, ExecMode::kReference);
    expect_lane_matches(fast, MachineView(super), arrays_, p.n, "super vs fast");
    expect_lane_matches(ref, MachineView(super), arrays_, p.n, "super vs reference");
    EXPECT_EQ(super.executed_statements(), fast.executed_statements());
    EXPECT_EQ(super.disabled_statements(), fast.disabled_statements());
    EXPECT_EQ(super.issued_instructions(), fast.issued_instructions());
  }
}

// VM batching: every lane of every chunk, at every width, is bit-identical
// to a single-cell run of the same program.
TEST_P(BatchDifferentialTest, VmBatchMatchesSingleAtEveryWidth) {
  std::vector<Machine> singles;
  for (const LoopProgram& p : programs_) singles.push_back(run_program(p));

  for (const std::size_t width : kWidths) {
    for (std::size_t at = 0; at < programs_.size(); at += width) {
      const std::size_t count = std::min(width, programs_.size() - at);
      const std::vector<LoopProgram> chunk(programs_.begin() + at,
                                           programs_.begin() + at + count);
      const std::vector<Machine> lanes = run_program_batch(chunk);
      ASSERT_EQ(lanes.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        const Machine& single = singles[at + i];
        const std::string label = "vm width=" + std::to_string(width) + " lane=" +
                                  std::to_string(at + i) + " n=" +
                                  std::to_string(chunk[i].n);
        expect_lane_matches(single, MachineView(lanes[i]), arrays_, chunk[i].n, label);
        EXPECT_EQ(lanes[i].executed_statements(), single.executed_statements()) << label;
        EXPECT_EQ(lanes[i].disabled_statements(), single.disabled_statements()) << label;
        EXPECT_EQ(lanes[i].issued_instructions(), single.issued_instructions()) << label;
      }
    }
  }
}

// Native batching: the SoA kernel's per-lane readback equals both the
// single-cell native kernel and the VM expectation.
TEST_P(BatchDifferentialTest, NativeBatchMatchesSingleAtEveryWidth) {
  if (!native::native_available()) GTEST_SKIP() << "no working host compiler";

  std::vector<Machine> singles;
  for (const LoopProgram& p : programs_) singles.push_back(run_program(p));

  for (const std::size_t width : kWidths) {
    for (std::size_t at = 0; at < programs_.size(); at += width) {
      const std::size_t count = std::min(width, programs_.size() - at);
      const std::vector<LoopProgram> chunk(programs_.begin() + at,
                                           programs_.begin() + at + count);
      const native::BatchOutcome batch = native::run_native_batch(chunk);
      ASSERT_TRUE(batch.ok()) << batch.diagnostic;
      ASSERT_EQ(batch.lanes.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        const Machine& single = singles[at + i];
        const std::string label = "native width=" + std::to_string(width) + " lane=" +
                                  std::to_string(at + i) + " n=" +
                                  std::to_string(chunk[i].n);
        expect_lane_matches(single, batch.lanes[i], arrays_, chunk[i].n, label);
        EXPECT_EQ(batch.lanes[i].executed_statements(), single.executed_statements())
            << label;
        EXPECT_EQ(batch.lanes[i].disabled_statements(), single.disabled_statements())
            << label;
      }
    }
    // Width 1 additionally cross-checks the two native ABIs against each
    // other: a one-lane batch kernel vs the single-cell kernel.
    if (width == 1) {
      const native::NativeOutcome one = native::run_native(programs_.front());
      ASSERT_TRUE(one.ok()) << one.diagnostic;
      const native::BatchOutcome batch =
          native::run_native_batch({programs_.front()});
      ASSERT_TRUE(batch.ok()) << batch.diagnostic;
      EXPECT_EQ(batch.lanes[0].executed_statements(), one.result.executed_statements());
      EXPECT_EQ(batch.lanes[0].disabled_statements(), one.result.disabled_statements());
      const auto diffs = diff_observable_state(one.result, batch.lanes[0], arrays_,
                                               programs_.front().n);
      EXPECT_TRUE(diffs.empty()) << (diffs.empty() ? "" : diffs.front());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, BatchDifferentialTest,
                         ::testing::ValuesIn(make_variants()), variant_name);

// ---------------------------------------------------------------------------
// Driver level: batched sweeps export the same bytes as single-cell sweeps.

std::vector<driver::SweepCell> driver_cells() {
  std::vector<driver::SweepCell> cells;
  for (const auto& info : benchmarks::all_graphs()) {
    for (const driver::ExecEngine exec :
         {driver::ExecEngine::kVm, driver::ExecEngine::kNative}) {
      for (const std::int64_t n : {17, 23, 40}) {
        for (const driver::Transform t :
             {driver::Transform::kOriginal, driver::Transform::kRetimedCsr,
              driver::Transform::kUnfoldedCsr}) {
          driver::SweepCell cell;
          cell.benchmark = info.name;
          cell.exec = exec;
          cell.transform = t;
          cell.factor = t == driver::Transform::kUnfoldedCsr ? 2 : 1;
          cell.n = n;
          cells.push_back(cell);
        }
      }
    }
  }
  return cells;
}

TEST(BatchDriver, ExportsAreByteIdenticalAtEveryWidth) {
  driver::SweepConfig base;
  base.cells(driver_cells()).threads(4);

  const driver::SweepRun single = run_sweep(base);
  const std::string csv = driver::to_csv(single.results);
  const std::string json = driver::to_json(single.results);

  for (const std::size_t width : {std::size_t{2}, std::size_t{3}, std::size_t{7},
                                  std::size_t{16}}) {
    driver::SweepConfig batched = base;
    batched.batch_width(width);
    const driver::SweepRun run = run_sweep(batched);
    ASSERT_EQ(run.results.size(), single.results.size());
    EXPECT_EQ(driver::to_csv(run.results), csv) << "width=" << width;
    EXPECT_EQ(driver::to_json(run.results), json) << "width=" << width;
    for (std::size_t i = 0; i < run.results.size(); ++i) {
      const driver::SweepResult& a = single.results[i];
      const driver::SweepResult& b = run.results[i];
      EXPECT_EQ(a.verified, b.verified) << i;
      EXPECT_EQ(a.discipline_ok, b.discipline_ok) << i;
      EXPECT_EQ(a.measured_size, b.measured_size) << i;
      EXPECT_EQ(a.exec_statements, b.exec_statements) << i;
      EXPECT_EQ(a.engine_fallback, b.engine_fallback) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Compile cache: the SoA layouts and the single-cell layout must never
// alias. Regression for the content key ignoring CompileOptions::layout —
// the batch kernel and the single kernel are built from *different* source
// texts in production, but nothing in the cache contract may rely on that.

TEST(BatchCompileCache, LayoutIsPartOfTheCacheKey) {
  if (!native::native_available()) GTEST_SKIP() << "no working host compiler";

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("csr-batch-layout-cache-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  const std::string source = "int csr_cache_probe(void) { return 42; }\n";
  native::CompileOptions single;
  single.cache_dir = dir.string();
  native::CompileOptions batch2 = single;
  batch2.layout = "soa-v1-w2";
  native::CompileOptions batch3 = single;
  batch3.layout = "soa-v1-w3";

  const native::CompileResult a = native::compile_shared_object(source, single);
  const native::CompileResult b = native::compile_shared_object(source, batch2);
  const native::CompileResult c = native::compile_shared_object(source, batch3);
  ASSERT_TRUE(a.ok) << a.diagnostic;
  ASSERT_TRUE(b.ok) << b.diagnostic;
  ASSERT_TRUE(c.ok) << c.diagnostic;

  // Distinct layouts → distinct cache slots; no first-writer-wins aliasing.
  EXPECT_FALSE(b.cache_hit);
  EXPECT_FALSE(c.cache_hit);
  EXPECT_NE(a.shared_object, b.shared_object);
  EXPECT_NE(a.shared_object, c.shared_object);
  EXPECT_NE(b.shared_object, c.shared_object);

  // Same layout → the cache serves the same object back.
  const native::CompileResult b2 = native::compile_shared_object(source, batch2);
  ASSERT_TRUE(b2.ok) << b2.diagnostic;
  EXPECT_TRUE(b2.cache_hit);
  EXPECT_EQ(b2.shared_object, b.shared_object);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace csr
