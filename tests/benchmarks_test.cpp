// Sanity checks on the reconstructed benchmark graphs: node counts from the
// paper's "Orig" column, legality, unit times, and the measured pipeline
// depths / register counts the experiment tables rely on.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codesize/model.hpp"
#include "dfg/algorithms.hpp"
#include "dfg/iteration_bound.hpp"
#include "retiming/opt.hpp"

namespace csr {
namespace {

struct Expectation {
  const char* name;
  std::size_t nodes;
  int min_period;
  int depth;
  std::int64_t registers;
};

class BenchmarkShapeTest : public ::testing::TestWithParam<Expectation> {};

TEST_P(BenchmarkShapeTest, MatchesDocumentedShape) {
  const auto& graphs = benchmarks::table_benchmarks();
  const auto it = std::find_if(graphs.begin(), graphs.end(), [&](const auto& b) {
    return b.name == std::string(GetParam().name);
  });
  ASSERT_NE(it, graphs.end());
  const DataFlowGraph g = it->factory();
  EXPECT_EQ(g.node_count(), GetParam().nodes);
  EXPECT_TRUE(g.is_legal());
  EXPECT_TRUE(g.unit_time());
  const OptimalRetiming opt = minimum_period_retiming(g);
  EXPECT_EQ(opt.period, GetParam().min_period);
  EXPECT_EQ(opt.retiming.max_value(), GetParam().depth);
  EXPECT_EQ(registers_required(opt.retiming), GetParam().registers);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, BenchmarkShapeTest,
    ::testing::Values(Expectation{"IIR Filter", 8, 3, 1, 2},
                      Expectation{"Differential Equation", 11, 3, 2, 3},
                      Expectation{"All-pole Filter", 15, 3, 3, 4},
                      Expectation{"Elliptical Filter", 34, 3, 2, 3},
                      Expectation{"4-stage Lattice Filter", 26, 3, 2, 3},
                      Expectation{"Volterra Filter", 27, 3, 1, 2}),
    [](const auto& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Benchmarks, RetimingImprovesEveryBenchmark) {
  // Every table benchmark must actually need software pipelining: the
  // original cycle period strictly exceeds the retimed one.
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const OptimalRetiming opt = minimum_period_retiming(g);
    EXPECT_GT(cycle_period(g), opt.period) << info.name;
  }
}

TEST(Benchmarks, FractionalBoundsOnlyWhereDocumented) {
  // Elliptic and lattice have fractional bounds (8/3) — they need unfolding
  // for rate optimality; the others reach their bound by retiming alone.
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const auto bound = iteration_bound(g);
    ASSERT_TRUE(bound.has_value());
    const OptimalRetiming opt = minimum_period_retiming(g);
    const bool fractional = !bound->is_integer();
    if (fractional) {
      EXPECT_GT(Rational(opt.period), *bound) << info.name;
    } else {
      EXPECT_EQ(Rational(opt.period), *bound) << info.name;
    }
  }
}

TEST(Benchmarks, DidacticGraphsPresent) {
  EXPECT_EQ(benchmarks::figure1_example().node_count(), 2u);
  EXPECT_EQ(benchmarks::figure3_example().node_count(), 5u);
  EXPECT_EQ(benchmarks::figure4_example().node_count(), 3u);
  EXPECT_EQ(benchmarks::chao_sha_example().node_count(), 5u);
  EXPECT_FALSE(benchmarks::chao_sha_example().unit_time());
}

TEST(Benchmarks, AllGraphsListIncludesEverything) {
  EXPECT_EQ(benchmarks::all_graphs().size(), benchmarks::table_benchmarks().size() + 4);
  for (const auto& info : benchmarks::all_graphs()) {
    EXPECT_TRUE(info.factory().is_legal()) << info.name;
  }
}

TEST(Benchmarks, ChaoShaBoundRequiresUnfolding) {
  const DataFlowGraph g = benchmarks::chao_sha_example();
  const auto bound = iteration_bound(g);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(*bound, Rational(27, 2));
  // Retiming alone cannot reach a fractional bound.
  EXPECT_GT(Rational(minimum_period_retiming(g).period), *bound);
}

}  // namespace
}  // namespace csr
