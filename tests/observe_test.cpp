// Tests for the observability layer (src/observe/): the RAII span tracer —
// null-sink inertness, nesting, thread safety, Chrome JSON shape — and the
// metrics registry — histogram bucket boundaries, lock-free concurrent
// updates, exporter shape, reset semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "observe/observe.hpp"

namespace csr::observe {
namespace {

/// Every tracer test runs against the process-global tracer, so each starts
/// from a clean, enabled slate and leaves tracing off for the next test.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(TracerTest, DisabledSpanRecordsNothing) {
  Tracer::global().set_enabled(false);
  {
    Span span("test", "inert");
    span.arg("key", "value");  // dropped silently, no enabled() check needed
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(TracerTest, SpanOpenedWhileDisabledStaysInert) {
  // The contract: a span is recorded iff the tracer was enabled at *open*.
  Tracer::global().set_enabled(false);
  Span span("test", "late");
  Tracer::global().set_enabled(true);
  span.end();
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(TracerTest, SpanRecordsCategoryNameAndArgs) {
  {
    Span span("driver", "unit_test_span");
    span.arg("text", "hello").arg("flag", true).arg("n", 42);
  }
  const std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit_test_span");
  EXPECT_EQ(events[0].category, "driver");
  ASSERT_EQ(events[0].args.size(), 3u);
  EXPECT_EQ(events[0].args[0].key, "text");
  EXPECT_EQ(events[0].args[0].value, "hello");
  EXPECT_TRUE(events[0].args[0].quoted_string);
  EXPECT_EQ(events[0].args[1].value, "true");
  EXPECT_FALSE(events[0].args[1].quoted_string);
  EXPECT_EQ(events[0].args[2].value, "42");
}

TEST_F(TracerTest, NestedSpansAreTimeContainedAndCloseInnerFirst) {
  {
    Span outer("test", "outer");
    {
      Span inner("test", "inner");
      (void)inner;
    }
  }
  const std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Spans record on close, so the inner one lands first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.thread, outer.thread);
  // Chrome/Perfetto reconstruct nesting from time containment per thread.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns, outer.start_ns + outer.duration_ns);
}

TEST_F(TracerTest, ExplicitEndStopsTheClockAndDestructorIsIdempotent) {
  {
    Span span("test", "ended_early");
    span.end();
    EXPECT_FALSE(span.active());
    span.end();  // second end is a no-op; the destructor adds nothing either
  }
  EXPECT_EQ(Tracer::global().event_count(), 1u);
}

TEST_F(TracerTest, ConcurrentSpansFromManyThreadsAllLand) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("test", "worker_span");
        span.arg("thread", t).arg("i", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kSpansPerThread));
  // Dense thread ids: every span from one std::thread carries the same tid,
  // and the "thread" arg partitions events into kThreads groups of equal size.
  std::vector<int> per_arg_thread(kThreads, 0);
  for (const TraceEvent& e : events) {
    ASSERT_EQ(e.args.size(), 2u);
    per_arg_thread[std::stoi(e.args[0].value)]++;
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_arg_thread[t], kSpansPerThread);
}

TEST_F(TracerTest, ChromeJsonHasCompleteEventsAndArgs) {
  {
    Span span("driver", "json_probe");
    span.arg("label", "va\"lue").arg("count", 7);
  }
  const std::string json = Tracer::global().to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"json_probe\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"va\\\"lue\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 7"), std::string::npos);
}

TEST_F(TracerTest, CsrSpanMacroExpandsToAScopedSpan) {
  {
    CSR_SPAN("test", "macro_span");
    CSR_SPAN("test", "second_on_same_scope");  // distinct names, no collision
  }
  EXPECT_EQ(Tracer::global().event_count(), 2u);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // bucket 0 (≤ 1)
  h.observe(1.0);   // bucket 0 — the edge belongs to the lower bucket
  h.observe(2.0);   // bucket 1
  h.observe(2.001); // bucket 2
  h.observe(100.0); // +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // index bounds().size() is +Inf
  EXPECT_EQ(h.cumulative_count(0), 2u);
  EXPECT_EQ(h.cumulative_count(1), 3u);
  EXPECT_EQ(h.cumulative_count(2), 4u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 2.0 + 2.001 + 100.0);
}

TEST(Histogram, ConcurrentObservesLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kObservations = 10000;
  Histogram h({1.0, 2.0});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObservations; ++i) h.observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  const std::uint64_t expected = static_cast<std::uint64_t>(kThreads) * kObservations;
  EXPECT_EQ(h.count(), expected);
  EXPECT_EQ(h.bucket_count(0), expected);
  // The CAS loop on the double sum must not drop updates either; every
  // observation contributed exactly 1.0, so the sum is exact.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(expected));
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test_registry_identity_total", "help once");
  Counter& b = reg.counter("test_registry_identity_total");
  EXPECT_EQ(&a, &b);
  a.increment(3);
  EXPECT_EQ(reg.counter_value("test_registry_identity_total"), 3u);
  EXPECT_EQ(reg.counter_value("test_registry_no_such_counter"), 0u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test_registry_kind_total");
  EXPECT_THROW(reg.gauge("test_registry_kind_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("test_registry_kind_total", {1.0}), std::logic_error);
}

TEST(MetricsRegistry, PrometheusExpositionShape) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test_prom_events_total", "Events counted by the test").increment(2);
  reg.gauge("test_prom_depth", "A depth gauge").set(-4);
  Histogram& h =
      reg.histogram("test_prom_seconds", {0.1, 1.0}, "A latency histogram");
  h.observe(0.05);
  h.observe(5.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP test_prom_events_total Events counted by the test"),
            std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE test_prom_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_events_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prom_depth -4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_bucket{le=\"0.1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_prom_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_sum"), std::string::npos);
}

TEST(MetricsRegistry, JsonExportNamesEveryKind) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test_json_probe_total").increment();
  reg.gauge("test_json_probe_gauge").set(9);
  reg.histogram("test_json_probe_seconds", {1.0}).observe(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_probe_total\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_probe_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_probe_seconds\""), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferencesValid) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test_reset_survivor_total");
  c.increment(41);
  const std::size_t size_before = reg.size();
  reg.reset();
  EXPECT_EQ(reg.size(), size_before);  // registrations survive, values don't
  EXPECT_EQ(c.value(), 0u);
  c.increment();  // the cached reference instrumentation sites hold still works
  EXPECT_EQ(reg.counter_value("test_reset_survivor_total"), 1u);
}

TEST(ScopedTimer, ObservesElapsedSecondsIntoHistogramAndDouble) {
  Histogram h(latency_seconds_bounds());
  double seconds = -1.0;
  {
    ScopedTimer timer(h, seconds);
    EXPECT_GE(timer.seconds_so_far(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(seconds, 0.0);
  EXPECT_LT(seconds, 10.0);  // sanity: constructing a timer is not slow
  EXPECT_DOUBLE_EQ(h.sum(), seconds);
}

}  // namespace
}  // namespace csr::observe
