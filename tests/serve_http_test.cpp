// Unit tests for the serve layer's socket-free pieces: the incremental
// HTTP/1.1 request parser, response rendering, the JSON reader, the sharded
// LRU cache and single-flight coalescing (src/serve/). Everything here runs
// without a port; the end-to-end socket tests live in serve_server_test.cpp.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/single_flight.hpp"

namespace csr::serve {
namespace {

// --- request parser ---------------------------------------------------------

TEST(RequestParser, ParsesSimpleGet) {
  RequestParser parser;
  parser.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.version_minor, 1);
  EXPECT_TRUE(request.body.empty());
  ASSERT_TRUE(request.header("host").has_value());
  EXPECT_EQ(*request.header("host"), "x");
  EXPECT_EQ(parser.next_request(&request), ParseStatus::kNeedMore);
}

TEST(RequestParser, ParsesPostBody) {
  RequestParser parser;
  parser.feed(
      "POST /v1/sweep HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kRequest);
  EXPECT_EQ(request.body, "abcd");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RequestParser, ReassemblesByteByByte) {
  const std::string wire =
      "POST /v1/sweep HTTP/1.1\r\nContent-Length: 11\r\nX-Extra: v\r\n\r\n"
      "hello world";
  RequestParser parser;
  HttpRequest request;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.feed(std::string_view(&wire[i], 1));
    ASSERT_EQ(parser.next_request(&request), ParseStatus::kNeedMore)
        << "completed early at byte " << i;
  }
  parser.feed(std::string_view(&wire[wire.size() - 1], 1));
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kRequest);
  EXPECT_EQ(request.body, "hello world");
  EXPECT_EQ(*request.header("x-extra"), "v");
}

TEST(RequestParser, DrainsPipelinedRequests) {
  RequestParser parser;
  parser.feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /c HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kRequest);
  EXPECT_EQ(request.target, "/a");
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kRequest);
  EXPECT_EQ(request.target, "/b");
  EXPECT_EQ(request.body, "hi");
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kRequest);
  EXPECT_EQ(request.target, "/c");
  EXPECT_EQ(parser.next_request(&request), ParseStatus::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RequestParser, HeaderNamesAreLowercasedValuesTrimmed) {
  RequestParser parser;
  parser.feed("GET / HTTP/1.1\r\nX-MiXeD-CaSe:   padded value  \r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kRequest);
  EXPECT_EQ(*request.header("x-mixed-case"), "padded value");
}

TEST(RequestParser, RejectsMalformedRequestLine) {
  for (const char* wire : {
           "GET\r\n\r\n",                        // no target
           "GET / extra HTTP/1.1\r\n\r\n",       // three spaces
           "GET /\r\n\r\n",                      // no version
           "GET / HTTP/9.9\r\n\r\n",             // unsupported major
       }) {
    RequestParser parser;
    parser.feed(wire);
    HttpRequest request;
    EXPECT_EQ(parser.next_request(&request), ParseStatus::kError) << wire;
    EXPECT_GE(parser.error_status(), 400) << wire;
  }
}

TEST(RequestParser, RejectsUnsupportedVersionWith505) {
  RequestParser parser;
  parser.feed("GET / HTTP/2.0\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(RequestParser, RejectsSpaceBeforeColon) {
  // "Header : v" is a request-smuggling vector (RFC 9112 §5.1 requires
  // rejection).
  RequestParser parser;
  parser.feed("GET / HTTP/1.1\r\nBad-Header : v\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, RejectsObsoleteLineFolding) {
  RequestParser parser;
  parser.feed("GET / HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, RejectsOversizedHeaders) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  RequestParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\nX-Pad: ";
  wire.append(512, 'a');
  wire += "\r\n\r\n";
  parser.feed(wire);
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, RejectsOversizedBody) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  RequestParser parser(limits);
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParser, RejectsChunkedTransferEncoding) {
  RequestParser parser;
  parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParser, RejectsNegativeAndJunkContentLength) {
  for (const char* bad : {"-1", "abc", "12x", ""}) {
    RequestParser parser;
    parser.feed(std::string("POST / HTTP/1.1\r\nContent-Length: ") + bad +
                "\r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(parser.next_request(&request), ParseStatus::kError)
        << "Content-Length: " << bad;
  }
}

TEST(RequestParser, StaysPoisonedAfterError) {
  RequestParser parser;
  parser.feed("BROKEN\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.next_request(&request), ParseStatus::kError);
  const int status = parser.error_status();
  parser.feed("GET / HTTP/1.1\r\n\r\n");  // valid bytes cannot resurrect it
  EXPECT_EQ(parser.next_request(&request), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), status);
}

TEST(HttpRequest, KeepAliveDefaultsPerVersion) {
  HttpRequest request;
  request.version_minor = 1;
  EXPECT_TRUE(request.keep_alive());
  request.headers["connection"] = "close";
  EXPECT_FALSE(request.keep_alive());
  request.headers.clear();
  request.version_minor = 0;
  EXPECT_FALSE(request.keep_alive());
  request.headers["connection"] = "keep-alive";
  EXPECT_TRUE(request.keep_alive());
}

TEST(RenderResponse, EmitsContentLengthAndConnection) {
  const std::string response =
      render_response(200, "text/plain", "ok\n", /*keep_alive=*/true,
                      {"X-Extra: 1"});
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(response.find("X-Extra: 1\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 3), "ok\n");

  const std::string closed =
      render_response(503, "text/plain", "", /*keep_alive=*/false);
  EXPECT_NE(closed.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(closed.find("Connection: close\r\n"), std::string::npos);
}

// --- JSON reader ------------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers) {
  const auto v = parse_json(
      R"({"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "s": "x\nA"})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* a = v->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[0].as_int(), 1);
  EXPECT_FALSE(a->as_array()[1].as_int().has_value());  // 2.5 is not exact
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_double(), 2.5);
  EXPECT_EQ(a->as_array()[2].as_int(), -3);
  EXPECT_TRUE(v->get("b")->get("c")->as_bool());
  EXPECT_TRUE(v->get("b")->get("d")->is_null());
  EXPECT_EQ(v->get("s")->as_string(), "x\nA");
}

TEST(Json, RejectsTrailingGarbageAndBadSyntax) {
  for (const char* bad :
       {"{} x", "[1,]", "{\"a\":}", "\"unterminated", "01", "+1", "nul",
        "[1 2]", "{\"a\" 1}", ""}) {
    JsonError error;
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.message.empty()) << bad;
  }
}

TEST(Json, DepthLimitStopsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(parse_json(deep, nullptr, 64).has_value());
  EXPECT_TRUE(parse_json(deep, nullptr, 128).has_value());
}

TEST(Json, SurrogatePairsDecodeToUtf8) {
  const auto v = parse_json(R"("😀")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "\xF0\x9F\x98\x80");  // U+1F600
}

// --- sharded LRU cache ------------------------------------------------------

TEST(ShardedLruCache, PutGetAndMissCounting) {
  ShardedLruCache cache(8, 2);
  EXPECT_FALSE(cache.get("absent").has_value());
  cache.put("k1", "v1");
  const auto hit = cache.get("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "v1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedLruCache, OverwriteReplacesValue) {
  ShardedLruCache cache(8, 1);
  cache.put("k", "old");
  cache.put("k", "new");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get("k"), "new");
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsedPerShard) {
  // One shard makes the LRU order deterministic and global.
  ShardedLruCache cache(2, 1);
  cache.put("a", "1");
  cache.put("b", "2");
  ASSERT_TRUE(cache.get("a").has_value());  // a is now most-recent
  cache.put("c", "3");                      // evicts b
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCache, ShardCountRoundsUpToPowerOfTwo) {
  // 3 shards round to 4; keys must still resolve consistently.
  ShardedLruCache cache(64, 3);
  for (int i = 0; i < 32; ++i) {
    cache.put("key" + std::to_string(i), std::to_string(i));
  }
  for (int i = 0; i < 32; ++i) {
    const auto v = cache.get("key" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, std::to_string(i));
  }
}

// --- single flight ----------------------------------------------------------

TEST(SingleFlight, LeaderComputesOnceSequentially) {
  SingleFlight<int> flights;
  int computed = 0;
  const auto [first, coalesced1] = flights.run("k", [&] { return ++computed; });
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(coalesced1);
  // The call is forgotten after completion: a later request recomputes.
  const auto [second, coalesced2] = flights.run("k", [&] { return ++computed; });
  EXPECT_EQ(second, 2);
  EXPECT_FALSE(coalesced2);
}

TEST(SingleFlight, ExceptionPropagatesToLeaderAndWaiters) {
  SingleFlight<int> flights;
  EXPECT_THROW(
      flights.run("k", []() -> int { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The failed call must not wedge the key.
  const auto [value, coalesced] = flights.run("k", [] { return 7; });
  EXPECT_EQ(value, 7);
  EXPECT_FALSE(coalesced);
}

}  // namespace
}  // namespace csr::serve
