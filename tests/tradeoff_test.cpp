// Tests for the design-space explorer: sweep structure, monotonicity of the
// retime-first points, Pareto filtering and budget queries.

#include <gtest/gtest.h>

#include <map>

#include "benchmarks/benchmarks.hpp"
#include "codesize/tradeoff.hpp"
#include "dfg/iteration_bound.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(Tradeoff, ProducesAllThreeFamiliesPerFactor) {
  TradeoffOptions options;
  options.max_factor = 3;
  const auto points = explore_tradeoffs(benchmarks::iir_filter(), options);
  EXPECT_EQ(points.size(), 9u);
  std::map<TransformOrder, int> families;
  for (const auto& p : points) {
    ++families[p.order];
    EXPECT_GE(p.factor, 1);
    EXPECT_LE(p.factor, 3);
    EXPECT_GT(p.size_csr, 0);
  }
  EXPECT_EQ(families[TransformOrder::kUnfoldOnly], 3);
  EXPECT_EQ(families[TransformOrder::kRetimeUnfold], 3);
  EXPECT_EQ(families[TransformOrder::kUnfoldRetime], 3);
}

TEST(Tradeoff, UnfoldOnlyPointsUseOneRegister) {
  const auto points = explore_tradeoffs(benchmarks::allpole_filter(), {});
  for (const auto& p : points) {
    if (p.order == TransformOrder::kUnfoldOnly) {
      EXPECT_EQ(p.registers, 1);
      EXPECT_EQ(p.depth, 0);
    }
  }
}

TEST(Tradeoff, CanSkipFamilies) {
  TradeoffOptions options;
  options.max_factor = 2;
  options.include_unfold_first = false;
  options.include_unfold_only = false;
  const auto points = explore_tradeoffs(benchmarks::iir_filter(), options);
  EXPECT_EQ(points.size(), 2u);
  for (const auto& p : points) EXPECT_EQ(p.order, TransformOrder::kRetimeUnfold);
}

TEST(Tradeoff, OrderNamesRender) {
  EXPECT_EQ(to_string(TransformOrder::kUnfoldOnly), "unfold-only");
  EXPECT_EQ(to_string(TransformOrder::kRetimeUnfold), "retime-unfold");
  EXPECT_EQ(to_string(TransformOrder::kUnfoldRetime), "unfold-retime");
}

TEST(Tradeoff, IterationPeriodsNeverBelowBound) {
  const DataFlowGraph g = benchmarks::elliptic_filter();
  const auto bound = iteration_bound(g);
  ASSERT_TRUE(bound.has_value());
  TradeoffOptions options;
  options.max_factor = 4;
  for (const auto& p : explore_tradeoffs(g, options)) {
    EXPECT_GE(p.iteration_period, *bound);
  }
}

TEST(Tradeoff, UnfoldingByBoundDenominatorReachesRateOptimal) {
  // Elliptic bound is 8/3: the unfold-first point at f = 3 must hit it.
  const DataFlowGraph g = benchmarks::elliptic_filter();
  TradeoffOptions options;
  options.max_factor = 3;
  const auto points = explore_tradeoffs(g, options);
  const auto it = std::find_if(points.begin(), points.end(), [](const auto& p) {
    return p.order == TransformOrder::kUnfoldRetime && p.factor == 3;
  });
  ASSERT_NE(it, points.end());
  EXPECT_EQ(it->iteration_period, Rational(8, 3));
}

TEST(Tradeoff, CsrSizeGrowsLinearlyInFactorForRetimeFirst) {
  const auto points = explore_tradeoffs(benchmarks::volterra_filter(), {});
  std::vector<const TradeoffPoint*> retime_first;
  for (const auto& p : points) {
    if (p.order == TransformOrder::kRetimeUnfold) retime_first.push_back(&p);
  }
  ASSERT_GE(retime_first.size(), 3u);
  const std::int64_t delta = retime_first[1]->size_csr - retime_first[0]->size_csr;
  for (std::size_t k = 2; k < retime_first.size(); ++k) {
    EXPECT_EQ(retime_first[k]->size_csr - retime_first[k - 1]->size_csr, delta);
  }
}

TEST(Tradeoff, ParetoFrontierIsUndominated) {
  TradeoffOptions options;
  options.max_factor = 4;
  const auto points = explore_tradeoffs(benchmarks::lattice_filter(), options);
  const auto frontier = pareto_frontier(points);
  ASSERT_FALSE(frontier.empty());
  for (const auto& f : frontier) {
    for (const auto& p : points) {
      const bool dominates = p.iteration_period <= f.iteration_period &&
                             p.size_csr <= f.size_csr &&
                             (p.iteration_period < f.iteration_period ||
                              p.size_csr < f.size_csr);
      EXPECT_FALSE(dominates);
    }
  }
  // Frontier is sorted by period.
  for (std::size_t k = 1; k < frontier.size(); ++k) {
    EXPECT_LE(frontier[k - 1].iteration_period, frontier[k].iteration_period);
  }
}

TEST(Tradeoff, BestUnderBudgetRespectsConstraints) {
  TradeoffOptions options;
  options.max_factor = 4;
  const auto points = explore_tradeoffs(benchmarks::lattice_filter(), options);
  const auto best = best_under_budget(points, /*register_budget=*/3,
                                      /*size_budget=*/120);
  ASSERT_TRUE(best.has_value());
  EXPECT_LE(best->registers, 3);
  EXPECT_LE(best->size_csr, 120);
  // It is optimal among the feasible points.
  for (const auto& p : points) {
    if (p.registers <= 3 && p.size_csr <= 120) {
      EXPECT_LE(best->iteration_period, p.iteration_period);
    }
  }
}

TEST(Tradeoff, ImpossibleBudgetReturnsNothing) {
  const auto points = explore_tradeoffs(benchmarks::lattice_filter(), {});
  EXPECT_FALSE(best_under_budget(points, 0, 1).has_value());
}

TEST(Tradeoff, RejectsBadOptions) {
  TradeoffOptions options;
  options.max_factor = 0;
  EXPECT_THROW(explore_tradeoffs(benchmarks::iir_filter(), options), InvalidArgument);
}

}  // namespace
}  // namespace csr
