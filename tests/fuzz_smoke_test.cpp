// Deterministic robustness smoke tests: the text parsers must reject or
// accept mutated inputs without crashing, and library entry points must
// fail cleanly (typed exceptions) on hostile inputs.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "dfg/io.hpp"
#include "loopir/serialize.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace csr {
namespace {

std::string mutate(const std::string& base, SplitMix64& rng) {
  std::string text = base;
  const int edits = static_cast<int>(rng.uniform(1, 6));
  for (int k = 0; k < edits && !text.empty(); ++k) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.uniform(0, 3)) {
      case 0:  // flip a character
        text[pos] = static_cast<char>(rng.uniform(32, 126));
        break;
      case 1:  // delete a span
        text.erase(pos, static_cast<std::size_t>(rng.uniform(1, 10)));
        break;
      case 2:  // duplicate a span
        text.insert(pos, text.substr(pos, static_cast<std::size_t>(rng.uniform(1, 10))));
        break;
      default:  // inject a newline (changes line structure)
        text.insert(pos, "\n");
        break;
    }
  }
  return text;
}

TEST(FuzzSmoke, DfgParserNeverCrashes) {
  const std::string base = to_text(benchmarks::elliptic_filter());
  SplitMix64 rng(0xF00DF00D);
  int accepted = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const std::string text = mutate(base, rng);
    try {
      const DataFlowGraph g = parse_text(text);
      ++accepted;
      // Whatever parses must be structurally coherent.
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        EXPECT_LT(g.edge(e).from, g.node_count());
        EXPECT_LT(g.edge(e).to, g.node_count());
      }
    } catch (const Error&) {
      // ParseError / InvalidArgument are the expected rejections.
    }
  }
  // Some mutations must survive (comments/whitespace edits), otherwise the
  // mutator is too destructive to exercise the accept path.
  EXPECT_GT(accepted, 0);
}

TEST(FuzzSmoke, ProgramParserNeverCrashes) {
  const std::string base =
      "program demo\n"
      "n 9\n"
      "segment 0 0 1\n"
      "setup p1 2\n"
      "segment 1 9 3\n"
      "stmt A 1 + guard p1 src B -2 src C 0\n"
      "dec p1 1\n";
  SplitMix64 rng(0xBADC0DE);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string text = mutate(base, rng);
    try {
      const LoopProgram p = parse_program_text(text);
      (void)p.code_size();
      (void)p.validate();
    } catch (const Error&) {
    }
  }
}

TEST(FuzzSmoke, TruncatedInputsRejectCleanly) {
  const std::string base = to_text(benchmarks::iir_filter());
  for (std::size_t len = 0; len < base.size(); len += 7) {
    try {
      (void)parse_text(base.substr(0, len));
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace csr
