// Seeded corpus-driven fuzzing of the text parsers and the full transform
// pipeline: mutated inputs must be rejected with typed exceptions (never a
// crash), whatever parses must be structurally coherent, and random DFGs
// must survive the whole codegen + VM path.
//
// Reproducing a failure: every trial runs under a SCOPED_TRACE naming its
// corpus seed and trial index, so a gtest failure message pins the exact
// (seed, trial) pair — rerun with the same binary and the failure is
// deterministic. Effort scales with the CSR_FUZZ_ITERS environment variable
// (iterations per corpus seed; default 100 keeps the suite fast, CI's
// sanitizer job raises it).

#include <gtest/gtest.h>

#include <cstdlib>

#include "benchmarks/benchmarks.hpp"
#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "codegen/unfolded.hpp"
#include "dfg/io.hpp"
#include "dfg/random.hpp"
#include "loopir/pipeline.hpp"
#include "loopir/serialize.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

/// The in-repo fuzz corpus: every run of the suite starts from exactly these
/// seeds, so results are reproducible across machines and CI runs. Seeds
/// that once exposed a bug should be appended here as permanent regressions.
constexpr std::uint64_t kSeedCorpus[] = {
    0xF00DF00Dull, 0xBADC0DEull,  0x5EED0001ull, 0x5EED0002ull,
    0x5EED0003ull, 0xDEADBEEFull, 0xC0FFEEull,   0x123456789ABCDEFull,
};

/// Iterations per corpus seed; override with CSR_FUZZ_ITERS=<count>.
int iterations_per_seed() {
  if (const char* env = std::getenv("CSR_FUZZ_ITERS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 100;
}

std::string mutate(const std::string& base, SplitMix64& rng) {
  std::string text = base;
  const int edits = static_cast<int>(rng.uniform(1, 6));
  for (int k = 0; k < edits && !text.empty(); ++k) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.uniform(0, 3)) {
      case 0:  // flip a character
        text[pos] = static_cast<char>(rng.uniform(32, 126));
        break;
      case 1:  // delete a span
        text.erase(pos, static_cast<std::size_t>(rng.uniform(1, 10)));
        break;
      case 2:  // duplicate a span
        text.insert(pos, text.substr(pos, static_cast<std::size_t>(rng.uniform(1, 10))));
        break;
      default:  // inject a newline (changes line structure)
        text.insert(pos, "\n");
        break;
    }
  }
  return text;
}

/// Runs `body(rng, trial)` for every (corpus seed, trial) pair, each under a
/// SCOPED_TRACE that makes failures reproducible from the message alone.
template <typename Body>
void for_each_corpus_trial(Body body) {
  const int iters = iterations_per_seed();
  for (const std::uint64_t seed : kSeedCorpus) {
    SplitMix64 rng(seed);
    for (int trial = 0; trial < iters; ++trial) {
      SCOPED_TRACE(::testing::Message()
                   << "seed 0x" << std::hex << seed << std::dec << " trial "
                   << trial << " (rerun: CSR_FUZZ_ITERS=" << iters << ")");
      body(rng, trial);
    }
  }
}

TEST(FuzzSmoke, DfgParserNeverCrashes) {
  const std::string base = to_text(benchmarks::elliptic_filter());
  int accepted = 0;
  for_each_corpus_trial([&](SplitMix64& rng, int /*trial*/) {
    const std::string text = mutate(base, rng);
    try {
      const DataFlowGraph g = parse_text(text);
      ++accepted;
      // Whatever parses must be structurally coherent.
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        EXPECT_LT(g.edge(e).from, g.node_count());
        EXPECT_LT(g.edge(e).to, g.node_count());
      }
    } catch (const Error&) {
      // ParseError / InvalidArgument are the expected rejections.
    }
  });
  // Some mutations must survive (comments/whitespace edits), otherwise the
  // mutator is too destructive to exercise the accept path.
  EXPECT_GT(accepted, 0);
}

TEST(FuzzSmoke, ProgramParserNeverCrashes) {
  const std::string base =
      "program demo\n"
      "n 9\n"
      "segment 0 0 1\n"
      "setup p1 2\n"
      "segment 1 9 3\n"
      "stmt A 1 + guard p1 src B -2 src C 0\n"
      "dec p1 1\n";
  for_each_corpus_trial([&](SplitMix64& rng, int /*trial*/) {
    const std::string text = mutate(base, rng);
    try {
      const LoopProgram p = parse_program_text(text);
      (void)p.code_size();
      (void)p.validate();
    } catch (const Error&) {
    }
  });
}

TEST(FuzzSmoke, TruncatedInputsRejectCleanly) {
  const std::string base = to_text(benchmarks::iir_filter());
  for (std::size_t len = 0; len < base.size(); len += 7) {
    SCOPED_TRACE(::testing::Message() << "prefix length " << len);
    try {
      (void)parse_text(base.substr(0, len));
    } catch (const Error&) {
    }
  }
}

TEST(FuzzSmoke, LoopIrSerializationRoundTrips) {
  // Serialize → parse → serialize must be the identity on every generated
  // program shape, for random DFGs drawn from the corpus seeds. This is the
  // contract the golden dumps and journal replay lean on.
  const int iters = std::max(1, iterations_per_seed() / 10);
  for (const std::uint64_t seed : kSeedCorpus) {
    SplitMix64 rng(seed);
    RandomDfgOptions options;
    options.max_nodes = 8;
    for (int trial = 0; trial < iters; ++trial) {
      SCOPED_TRACE(::testing::Message()
                   << "seed 0x" << std::hex << seed << std::dec << " trial "
                   << trial << " (rerun: CSR_FUZZ_ITERS=" << iters * 10 << ")");
      const DataFlowGraph g = random_dfg(rng, options);
      const std::int64_t n = 5 + trial % 11;
      for (const LoopProgram& p :
           {original_program(g, n), unfolded_csr_program(g, 2 + trial % 3, n)}) {
        const std::string text = to_program_text(p);
        const LoopProgram parsed = parse_program_text(text);
        EXPECT_EQ(to_program_text(parsed), text);
        EXPECT_EQ(parsed.code_size(), p.code_size());
        EXPECT_TRUE(parsed.validate().empty());
      }
    }
  }
}

TEST(FuzzSmoke, OptimizerSurvivesMutatedProgramsAndPreservesSemantics) {
  // Adversarial inputs for the peephole pipeline: whatever mutated program
  // text still parses AND validates must optimize without crashing, stay
  // valid, never grow — and when the program is cheap enough to execute,
  // the optimized form must be observably equivalent to the parsed one.
  const std::string base =
      "program demo\n"
      "n 9\n"
      "segment 0 0 1\n"
      "setup p1 2\n"
      "setup p2 0\n"
      "dec p1 1\n"
      "segment 1 9 3\n"
      "stmt A 1 + guard p1 src B -2 src C 0\n"
      "dec p1 1\n"
      "stmt B 1 * src A 0\n"
      "dec p1 1\n"
      "stmt C 1 + guard p2 src A -1\n"
      "dec p2 1\n";
  int optimized_count = 0;
  for_each_corpus_trial([&](SplitMix64& rng, int /*trial*/) {
    const std::string text = mutate(base, rng);
    LoopProgram parsed;
    try {
      parsed = parse_program_text(text);
    } catch (const Error&) {
      return;  // typed rejection is the expected path
    }
    if (!parsed.validate().empty()) return;
    // Bound the execution cost: mutations can inflate n or segment bounds
    // arbitrarily, and the equivalence check runs the program twice.
    std::int64_t work = 0;
    for (const LoopSegment& seg : parsed.segments) {
      work += seg.trip_count() *
              static_cast<std::int64_t>(seg.instructions.size());
      if (work < 0) break;  // overflow: clearly too big
    }
    const bool executable = work >= 0 && work <= 100000 && parsed.n <= 100000;

    const PipelineResult result = optimize_pipeline(parsed);
    ++optimized_count;
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.size_after, result.size_before);
    EXPECT_TRUE(result.program.validate().empty());
    if (!executable) return;
    // The *parsed* program can be a runtime reject (e.g. a guard whose only
    // setup sits in a zero-trip segment) — that is the VM's call, not the
    // optimizer's, so skip those. But once the input runs, the optimized
    // form must run too and leave identical observable state; an Error out
    // of compare_programs here would be an optimizer-introduced reject and
    // fails the test loudly.
    try {
      (void)run_program(parsed);
    } catch (const Error&) {
      return;
    }
    const auto diffs = compare_programs(parsed, result.program, {"A", "B", "C"});
    EXPECT_TRUE(diffs.empty()) << diffs[0];
  });
  // The mutator must leave enough valid programs to exercise the pipeline.
  EXPECT_GT(optimized_count, 0);
}

TEST(FuzzSmoke, SuperinstructionVmMatchesReferenceOnMutatedPrograms) {
  // The superinstruction engine (ExecMode::kSuper) fuses guarded runs of
  // post-optimizer LoopIR into single ops; on *any* program that runs at
  // all it must agree with the map-backed reference interpreter — state,
  // write counts and all three issue counters. Mutated program text is the
  // adversary here: it produces guard/setup/segment shapes no generator
  // emits (zero-trip segments, dead guards, duplicated decrements).
  const std::string base =
      "program demo\n"
      "n 11\n"
      "segment 0 0 1\n"
      "setup p1 3\n"
      "setup p2 1\n"
      "segment 1 11 2\n"
      "stmt A 1 + guard p1 src B -2 src C 0\n"
      "stmt B 1 * guard p1 src A -1\n"
      "dec p1 1\n"
      "stmt C 1 + guard p2 src A -1\n"
      "dec p2 1\n"
      "stmt D 1 - src C 0\n";
  int executed = 0;
  for_each_corpus_trial([&](SplitMix64& rng, int /*trial*/) {
    const std::string text = mutate(base, rng);
    LoopProgram parsed;
    try {
      parsed = parse_program_text(text);
    } catch (const Error&) {
      return;
    }
    if (!parsed.validate().empty()) return;
    std::int64_t work = 0;
    for (const LoopSegment& seg : parsed.segments) {
      work += seg.trip_count() *
              static_cast<std::int64_t>(seg.instructions.size());
      if (work < 0) break;
    }
    if (work < 0 || work > 100000 || parsed.n > 100000) return;

    // Both engines must agree on accept vs reject, and on everything
    // observable when they accept.
    Machine reference;
    bool reference_ran = false;
    try {
      reference = run_program(parsed, ExecMode::kReference);
      reference_ran = true;
    } catch (const Error&) {
    }
    Machine super;
    bool super_ran = false;
    try {
      super = run_program(parsed, ExecMode::kSuper);
      super_ran = true;
    } catch (const Error&) {
    }
    EXPECT_EQ(reference_ran, super_ran) << "engines disagree on rejection";
    if (!reference_ran || !super_ran) return;
    ++executed;
    const auto diffs =
        diff_observable_state(reference, super, {"A", "B", "C", "D"}, parsed.n);
    EXPECT_TRUE(diffs.empty()) << diffs[0];
    EXPECT_EQ(super.executed_statements(), reference.executed_statements());
    EXPECT_EQ(super.disabled_statements(), reference.disabled_statements());
    EXPECT_EQ(super.issued_instructions(), reference.issued_instructions());
  });
  EXPECT_GT(executed, 0);
}

TEST(FuzzSmoke, PipelineSurvivesRandomDfgs) {
  // End-to-end robustness (not just parsers): random graphs through
  // retiming, codegen and the VM must verify — or reject with a typed
  // exception — never crash or corrupt state. Fewer iterations than the
  // parser fuzzers; each trial runs several programs.
  const int iters = std::max(1, iterations_per_seed() / 10);
  for (const std::uint64_t seed : kSeedCorpus) {
    SplitMix64 rng(seed);
    RandomDfgOptions options;
    options.max_nodes = 9;
    for (int trial = 0; trial < iters; ++trial) {
      SCOPED_TRACE(::testing::Message()
                   << "seed 0x" << std::hex << seed << std::dec << " trial "
                   << trial << " (rerun: CSR_FUZZ_ITERS=" << iters * 10 << ")");
      const DataFlowGraph g = random_dfg(rng, options);
      const std::int64_t n = 7 + trial % 13;
      try {
        const Machine reference = run_program(original_program(g, n));
        const auto arrays = array_names(g);
        ASSERT_TRUE(check_write_discipline(reference, arrays, n).empty());
        const OptimalRetiming opt = minimum_period_retiming(g);
        if (n > opt.retiming.max_value()) {
          const auto diffs = compare_programs(
              original_program(g, n), retimed_csr_program(g, opt.retiming, n), arrays);
          ASSERT_TRUE(diffs.empty()) << diffs[0];
        }
        const auto diffs = compare_programs(original_program(g, n),
                                            unfolded_csr_program(g, 2, n), arrays);
        ASSERT_TRUE(diffs.empty()) << diffs[0];
      } catch (const Error&) {
        // Typed rejection is acceptable; crashing is not.
      }
    }
  }
}

}  // namespace
}  // namespace csr
