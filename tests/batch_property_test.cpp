// Property tests of the batch execution paths over random DFGs: batching is
// a pure scheduling decision, so for any lane set the per-lane results must
// be invariant under (a) the batch width, (b) the order lanes are packed
// into batches, and (c) where the batch/remainder split falls. Each trial
// draws a random legal graph, builds ragged lanes (original and retimed-CSR
// forms at random trip counts), fixes the width-1 result as the oracle and
// replays the lanes through randomly re-ordered, randomly split batches.
//
// The VM leg runs every trial; the native leg compiles one kernel per
// (shape, width) so it samples fewer trials. Iterations scale with
// CSR_FUZZ_ITERS like the fuzz suite; every trial runs under a SCOPED_TRACE
// naming its seed so failures reproduce from the message alone.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "codegen/original.hpp"
#include "codegen/retimed.hpp"
#include "codegen/statements.hpp"
#include "dfg/random.hpp"
#include "native/batch.hpp"
#include "native/compile.hpp"
#include "retiming/opt.hpp"
#include "support/rng.hpp"
#include "vm/batch.hpp"
#include "vm/equivalence.hpp"

namespace csr {
namespace {

constexpr std::uint64_t kSeedCorpus[] = {
    0xBA7C4ED5ull, 0x5EED0B47ull, 0xC0DE50A1ull, 0xF00D5EEDull,
};

int iterations_per_seed() {
  if (const char* env = std::getenv("CSR_FUZZ_ITERS")) {
    const int value = std::atoi(env);
    if (value > 0) return std::max(1, value / 10);
  }
  return 10;
}

/// One trial's lane set: a random graph's original or retimed-CSR form at
/// 3..16 random ragged trip counts — by construction batch-compatible.
struct LaneSet {
  DataFlowGraph graph;
  std::vector<std::string> arrays;
  std::vector<LoopProgram> programs;
};

LaneSet random_lanes(SplitMix64& rng) {
  LaneSet lanes;
  RandomDfgOptions options;
  options.max_nodes = 8;
  lanes.graph = random_dfg(rng, options);
  lanes.arrays = array_names(lanes.graph);
  const bool csr = rng.uniform(0, 1) == 1;
  const std::optional<OptimalRetiming> opt =
      csr ? std::optional<OptimalRetiming>(minimum_period_retiming(lanes.graph))
          : std::nullopt;
  const int count = static_cast<int>(rng.uniform(3, 16));
  for (int i = 0; i < count; ++i) {
    // Retimed-CSR needs n past the deepest prologue; keep a safe floor.
    const std::int64_t floor = csr ? opt->retiming.max_value() + 1 : 1;
    const std::int64_t n = floor + rng.uniform(1, 40);
    lanes.programs.push_back(
        csr ? retimed_csr_program(lanes.graph, opt->retiming, n)
            : original_program(lanes.graph, n));
  }
  return lanes;
}

/// Splits [0, count) at random boundaries; every element appears once.
std::vector<std::vector<std::size_t>> random_split(std::size_t count,
                                                   SplitMix64& rng,
                                                   bool shuffle) {
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (shuffle) {
    for (std::size_t i = count; i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
  }
  std::vector<std::vector<std::size_t>> chunks;
  std::size_t at = 0;
  while (at < count) {
    const auto take = static_cast<std::size_t>(
        rng.uniform(1, static_cast<std::int64_t>(count - at)));
    chunks.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(at),
                        order.begin() + static_cast<std::ptrdiff_t>(at + take));
    at += take;
  }
  return chunks;
}

void expect_same_as_single(const Machine& single, const StateView& lane,
                           const std::vector<std::string>& arrays,
                           std::int64_t n, const std::string& label) {
  const auto diffs = diff_observable_state(MachineView(single), lane, arrays, n);
  ASSERT_TRUE(diffs.empty()) << label << ": " << diffs.front();
}

template <typename Body>
void for_each_trial(Body body) {
  const int iters = iterations_per_seed();
  for (const std::uint64_t seed : kSeedCorpus) {
    SplitMix64 rng(seed);
    for (int trial = 0; trial < iters; ++trial) {
      SCOPED_TRACE(::testing::Message()
                   << "seed 0x" << std::hex << seed << std::dec << " trial "
                   << trial);
      body(rng);
    }
  }
}

// VM: any shuffle + any split of the lane list reproduces the width-1
// result lane for lane, counters included.
TEST(BatchProperty, VmBatchInvariantUnderOrderingAndSplit) {
  for_each_trial([](SplitMix64& rng) {
    const LaneSet lanes = random_lanes(rng);
    std::vector<Machine> singles;
    for (const LoopProgram& p : lanes.programs) singles.push_back(run_program(p));

    for (const bool shuffle : {false, true}) {
      const auto chunks = random_split(lanes.programs.size(), rng, shuffle);
      for (const auto& chunk : chunks) {
        std::vector<LoopProgram> batch;
        for (const std::size_t i : chunk) batch.push_back(lanes.programs[i]);
        const std::vector<Machine> out = run_program_batch(batch);
        ASSERT_EQ(out.size(), chunk.size());
        for (std::size_t k = 0; k < chunk.size(); ++k) {
          const Machine& single = singles[chunk[k]];
          const std::string label =
              "lane " + std::to_string(chunk[k]) +
              (shuffle ? " (shuffled)" : " (in order)");
          expect_same_as_single(single, MachineView(out[k]), lanes.arrays,
                                batch[k].n, label);
          EXPECT_EQ(out[k].executed_statements(), single.executed_statements())
              << label;
          EXPECT_EQ(out[k].disabled_statements(), single.disabled_statements())
              << label;
          EXPECT_EQ(out[k].issued_instructions(), single.issued_instructions())
              << label;
        }
      }
    }
  });
}

// Native: same invariant through the SoA kernel. One compile per (shape,
// width) makes this the expensive leg, so it runs a slice of the trials.
TEST(BatchProperty, NativeBatchInvariantUnderOrderingAndSplit) {
  if (!native::native_available()) GTEST_SKIP() << "no working host compiler";

  int trials = 0;
  for (const std::uint64_t seed : kSeedCorpus) {
    SplitMix64 rng(seed);
    SCOPED_TRACE(::testing::Message() << "seed 0x" << std::hex << seed);
    const LaneSet lanes = random_lanes(rng);
    std::vector<Machine> singles;
    for (const LoopProgram& p : lanes.programs) singles.push_back(run_program(p));

    const auto chunks = random_split(lanes.programs.size(), rng, /*shuffle=*/true);
    for (const auto& chunk : chunks) {
      std::vector<LoopProgram> batch;
      for (const std::size_t i : chunk) batch.push_back(lanes.programs[i]);
      const native::BatchOutcome out = native::run_native_batch(batch);
      ASSERT_TRUE(out.ok()) << out.diagnostic;
      ASSERT_EQ(out.lanes.size(), chunk.size());
      for (std::size_t k = 0; k < chunk.size(); ++k) {
        const Machine& single = singles[chunk[k]];
        const std::string label = "native lane " + std::to_string(chunk[k]);
        expect_same_as_single(single, out.lanes[k], lanes.arrays, batch[k].n,
                              label);
        EXPECT_EQ(out.lanes[k].executed_statements(),
                  single.executed_statements())
            << label;
        EXPECT_EQ(out.lanes[k].disabled_statements(),
                  single.disabled_statements())
            << label;
      }
    }
    ++trials;
  }
  EXPECT_GT(trials, 0);
}

}  // namespace
}  // namespace csr
