// Tests for the code-collapsing baseline model and the per-stage census it
// is built from.

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "codesize/baselines.hpp"
#include "codesize/model.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"

namespace csr {
namespace {

TEST(StageSizes, Figure3StagesMatchThePaperPrologue) {
  // Figure 3(a) prologue: A | A,B,C | A,B,C,D → stages of 1, 3, 4
  // statements; epilogue: E,D | E,B,C,D | E → rendered back-to-front as
  // stages of 4, 3, 1 in drain order... measured: stage k keeps nodes with
  // r(v) ≤ M−1−k: {B,C,D,E}=4, {D,E}... with r = (3,2,2,1,0):
  //   epilogue stage 0: r ≤ 2 → B,C,D,E (4); stage 1: r ≤ 1 → D,E (2);
  //   stage 2: r ≤ 0 → E (1).
  const DataFlowGraph g = benchmarks::figure3_example();
  const Retiming r = minimum_period_retiming(g).retiming;
  const StageSizes sizes = stage_sizes(g, r);
  EXPECT_EQ(sizes.prologue, (std::vector<std::int64_t>{1, 3, 4}));
  EXPECT_EQ(sizes.epilogue, (std::vector<std::int64_t>{4, 2, 1}));
}

TEST(StageSizes, SumsEqualExpansionCensus) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const StageSizes sizes = stage_sizes(g, r);
    const PipelineExpansion census = pipeline_expansion(g, r);
    std::int64_t prologue = 0;
    for (const std::int64_t s : sizes.prologue) prologue += s;
    std::int64_t epilogue = 0;
    for (const std::int64_t s : sizes.epilogue) epilogue += s;
    EXPECT_EQ(prologue, census.prologue_statements) << info.name;
    EXPECT_EQ(epilogue, census.epilogue_statements) << info.name;
  }
}

TEST(Collapsing, NoStagesCollapsedEqualsExpandedSize) {
  const DataFlowGraph g = benchmarks::allpole_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  EXPECT_EQ(collapsed_size(g, r, 0, 0), predicted_retimed_size(g, r));
}

TEST(Collapsing, AllStagesCollapsedReachesBodySize) {
  const DataFlowGraph g = benchmarks::allpole_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const int depth = r.max_value();
  EXPECT_EQ(collapsed_size(g, r, depth, depth), original_size(g));
}

TEST(Collapsing, MonotoneInSafeStages) {
  const DataFlowGraph g = benchmarks::lattice_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  const int depth = r.max_value();
  std::int64_t previous = collapsed_size(g, r, 0, 0);
  for (int k = 1; k <= depth; ++k) {
    const std::int64_t current = collapsed_size(g, r, k, k);
    EXPECT_LT(current, previous);
    previous = current;
  }
}

TEST(Collapsing, CsrBeatsPartialCollapsingOnDeepPipelines) {
  // Unless every stage is provably safe to speculate, collapsing leaves
  // residue. On pipelines of depth ≥ 2 even one residual stage outweighs
  // CSR's fixed 2·|N_r| guard cost. (At depth 1 the residue can be a
  // handful of statements and collapsing may tie or narrowly win — the
  // "could not be guaranteed" trade-off the paper describes.)
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    const int depth = r.max_value();
    if (depth < 2) continue;
    const std::int64_t csr = predicted_retimed_csr_size(g, r);
    EXPECT_LT(csr, collapsed_size(g, r, depth - 1, depth)) << info.name;
    EXPECT_LT(csr, collapsed_size(g, r, depth, depth - 1)) << info.name;
  }
}

TEST(Collapsing, CsrNeverWorseThanFullyUncollapsedCode) {
  for (const auto& info : benchmarks::table_benchmarks()) {
    const DataFlowGraph g = info.factory();
    const Retiming r = minimum_period_retiming(g).retiming;
    EXPECT_LT(predicted_retimed_csr_size(g, r), collapsed_size(g, r, 0, 0))
        << info.name;
  }
}

TEST(Collapsing, RejectsOutOfRangeStages) {
  const DataFlowGraph g = benchmarks::iir_filter();
  const Retiming r = minimum_period_retiming(g).retiming;
  EXPECT_THROW((void)collapsed_size(g, r, r.max_value() + 1, 0), InvalidArgument);
  EXPECT_THROW((void)collapsed_size(g, r, 0, -1), InvalidArgument);
}

}  // namespace
}  // namespace csr
