// The multidimensional retiming engine (retiming/md_retiming.hpp): legality
// of vector retimings, the projection reduction to the 1-D difference-logic
// engines, the bundled benchmark family's known optima, and the closed-form
// 2-D code-size model against both the generated programs and the 1-D model
// on the linearized graph.

#include <gtest/gtest.h>

#include <set>

#include "codegen/nested.hpp"
#include "codesize/md_model.hpp"
#include "codesize/model.hpp"
#include "mdfg/builders.hpp"
#include "mdfg/graph.hpp"
#include "mdfg/random.hpp"
#include "retiming/md_retiming.hpp"
#include "retiming/opt.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace csr {
namespace {

TEST(MdRetimingTest, LegalityIsLexicographic) {
  MdDataFlowGraph g("pair");
  const NodeId a = g.add_node("A");
  const NodeId b = g.add_node("B");
  g.add_edge(a, b, 0, 1);
  g.add_edge(b, a, 1, -1);

  // Moving one column delay from a→b onto b→a stays legal: (0,0) and (1,0).
  MdRetiming shift(2);
  shift.set(b, MdDelay{0, 1});
  EXPECT_TRUE(is_legal_md_retiming(g, shift));
  const MdDataFlowGraph r = apply_md_retiming(g, shift);
  EXPECT_EQ(r.edge(0).delay, (MdDelay{0, 0}));
  EXPECT_EQ(r.edge(1).delay, (MdDelay{1, 0}));

  // Pulling a second delay would drive a→b to (0,-1): lex-negative.
  MdRetiming two(2);
  two.set(b, MdDelay{0, 2});
  EXPECT_FALSE(is_legal_md_retiming(g, two));
  EXPECT_THROW(apply_md_retiming(g, two), InvalidArgument);

  // Wrong-size retimings are never legal.
  EXPECT_FALSE(is_legal_md_retiming(g, MdRetiming(3)));
}

TEST(MdRetimingTest, ProjectionSeparatesLexZeroEdges) {
  const MdDataFlowGraph g = mdfg::jacobi5();
  const std::int64_t k = md_projection_factor(g);
  const DataFlowGraph proj = md_projected_graph(g, k);
  ASSERT_EQ(proj.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const MdDelay d = g.edge(e).delay;
    const std::int64_t flat = proj.edge(e).delay;
    EXPECT_EQ(flat, k * d.row + d.col);
    EXPECT_GE(flat, 0);
    EXPECT_EQ(flat == 0, d == (MdDelay{0, 0}));
  }
}

struct BenchmarkExpectation {
  const char* name;
  std::int64_t period;
  bool parallelizable;
};

class MdBenchmarkTest : public ::testing::TestWithParam<BenchmarkExpectation> {};

TEST_P(MdBenchmarkTest, EnginesAgreeOnTheKnownOptimum) {
  const auto& expect = GetParam();
  const MdDataFlowGraph g = mdfg::find_md_benchmark(expect.name)->factory();
  EXPECT_EQ(full_parallelism_achievable(g), expect.parallelizable);

  const MdOptimalRetiming heur = md_minimum_period_retiming(g);
  const MdOptimalRetiming exact = md_exact_optimal_retiming(g);
  EXPECT_EQ(heur.period, expect.period);
  EXPECT_EQ(exact.period, expect.period);
  EXPECT_EQ(md_exact_minimum_period(g), expect.period);
  EXPECT_EQ(heur.fully_parallel, expect.parallelizable);
  EXPECT_EQ(exact.fully_parallel, expect.parallelizable);

  for (const MdOptimalRetiming* out : {&heur, &exact}) {
    EXPECT_TRUE(out->retiming.pure_column());
    EXPECT_TRUE(is_legal_md_retiming(g, out->retiming));
    const MdDataFlowGraph retimed = apply_md_retiming(g, out->retiming);
    EXPECT_TRUE(retimed.is_legal());
    EXPECT_EQ(fully_parallel(retimed), expect.parallelizable);
    EXPECT_GE(out->min_cols, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Family, MdBenchmarkTest,
    ::testing::Values(BenchmarkExpectation{"conv3x3", 1, true},
                      BenchmarkExpectation{"jacobi5", 1, true},
                      // The (0,1) feedback cycle has 3 nodes and one column
                      // delay: inner period 3, full parallelism impossible.
                      BenchmarkExpectation{"iir2d", 3, false},
                      BenchmarkExpectation{"tline2d", 1, true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(MdRetimingPropertyTest, RandomGraphsLiftLegally) {
  SplitMix64 rng(42);
  for (int i = 0; i < 100; ++i) {
    const MdDataFlowGraph g = mdfg::random_mdfg(rng);
    // Backward edges are always row-carried, so full parallelism is
    // achievable by construction — and the engine must find period 1.
    EXPECT_TRUE(full_parallelism_achievable(g));
    const MdOptimalRetiming out = md_minimum_period_retiming(g);
    EXPECT_EQ(out.period, 1);
    EXPECT_TRUE(out.fully_parallel);
    EXPECT_TRUE(out.retiming.pure_column());
    EXPECT_TRUE(is_legal_md_retiming(g, out.retiming));
    EXPECT_TRUE(fully_parallel(apply_md_retiming(g, out.retiming)));

    // The lift is a true 1-D retiming of the linearized graph at min_cols.
    const DataFlowGraph lin = linearized(g, out.min_cols);
    EXPECT_TRUE(is_legal_retiming(lin, out.retiming.col_retiming()));
  }
}

TEST(MdRetimingPropertyTest, HeuristicMatchesExactPeriod) {
  SplitMix64 rng(99);
  for (int i = 0; i < 25; ++i) {
    const MdDataFlowGraph g = mdfg::random_mdfg(rng);
    EXPECT_EQ(md_minimum_period_retiming(g).period,
              md_exact_optimal_retiming(g).period);
  }
}

TEST(MdModelTest, PredictedSizesMatchGeneratedPrograms) {
  for (const auto& info : mdfg::md_benchmarks()) {
    const MdDataFlowGraph g = info.factory();
    const MdOptimalRetiming out = md_minimum_period_retiming(g);
    const std::int64_t rows = 5;
    const std::int64_t cols = std::max<std::int64_t>(out.min_cols, 8);
    EXPECT_EQ(nested_original_program(g, rows, cols).code_size(),
              md_original_size(g))
        << info.name;
    EXPECT_EQ(nested_retimed_program(g, out.retiming, rows, cols).code_size(),
              predicted_md_retimed_size(g, out.retiming))
        << info.name;
    EXPECT_EQ(nested_retimed_csr_program(g, out.retiming, rows, cols).code_size(),
              predicted_md_retimed_csr_size(g, out.retiming))
        << info.name;
    // Independent of the nest shape: double both extents, same sizes.
    EXPECT_EQ(
        nested_retimed_program(g, out.retiming, 2 * rows, 2 * cols).code_size(),
        predicted_md_retimed_size(g, out.retiming))
        << info.name;
  }
}

TEST(MdModelTest, MatchesTheOneDimensionalModelOnTheLinearization) {
  SplitMix64 rng(5);
  for (int i = 0; i < 25; ++i) {
    const MdDataFlowGraph g = mdfg::random_mdfg(rng);
    const MdOptimalRetiming out = md_minimum_period_retiming(g);
    const DataFlowGraph lin = linearized(g, out.min_cols);
    const Retiming col = out.retiming.col_retiming();
    EXPECT_EQ(md_original_size(g), original_size(lin));
    EXPECT_EQ(md_registers_required(out.retiming), registers_required(col));
    EXPECT_EQ(predicted_md_retimed_size(g, out.retiming),
              predicted_retimed_size(lin, col));
    EXPECT_EQ(predicted_md_retimed_csr_size(g, out.retiming),
              predicted_retimed_csr_size(lin, col));
  }
}

TEST(MdModelTest, RegistersCountDistinctColumnValues) {
  MdRetiming r(4);
  r.set(0, MdDelay{0, 2});
  r.set(1, MdDelay{0, 0});
  r.set(2, MdDelay{0, 2});
  r.set(3, MdDelay{0, 1});
  EXPECT_EQ(md_registers_required(r), 3);
  EXPECT_EQ(md_prologue_statements(r), 5);
  EXPECT_EQ(md_epilogue_statements(r), 4 * 2 - 5);
}

TEST(MdRetimingTest, MinColsGatesTheLowering) {
  const MdDataFlowGraph g = mdfg::conv3x3();
  const MdOptimalRetiming out = md_exact_optimal_retiming(g);
  ASSERT_GT(out.min_cols, 1);
  EXPECT_NO_THROW(nested_retimed_program(g, out.retiming, 3, out.min_cols));
  // A deep exact lift drives some retimed column component far negative;
  // at cols = 1 its linearized delay is negative and the lowering refuses.
  EXPECT_THROW(nested_retimed_program(g, out.retiming, 3, 1), InvalidArgument);
}

}  // namespace
}  // namespace csr
