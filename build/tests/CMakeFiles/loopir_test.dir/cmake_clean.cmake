file(REMOVE_RECURSE
  "CMakeFiles/loopir_test.dir/loopir_test.cpp.o"
  "CMakeFiles/loopir_test.dir/loopir_test.cpp.o.d"
  "loopir_test"
  "loopir_test.pdb"
  "loopir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loopir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
