# Empty dependencies file for loopir_test.
# This may be replaced when dependencies are built.
