# Empty compiler generated dependencies file for modulo_test.
# This may be replaced when dependencies are built.
