# Empty dependencies file for iteration_bound_test.
# This may be replaced when dependencies are built.
