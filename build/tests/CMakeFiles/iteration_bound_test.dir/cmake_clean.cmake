file(REMOVE_RECURSE
  "CMakeFiles/iteration_bound_test.dir/iteration_bound_test.cpp.o"
  "CMakeFiles/iteration_bound_test.dir/iteration_bound_test.cpp.o.d"
  "iteration_bound_test"
  "iteration_bound_test.pdb"
  "iteration_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iteration_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
