file(REMOVE_RECURSE
  "CMakeFiles/min_storage_test.dir/min_storage_test.cpp.o"
  "CMakeFiles/min_storage_test.dir/min_storage_test.cpp.o.d"
  "min_storage_test"
  "min_storage_test.pdb"
  "min_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
