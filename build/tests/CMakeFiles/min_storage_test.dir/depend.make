# Empty dependencies file for min_storage_test.
# This may be replaced when dependencies are built.
