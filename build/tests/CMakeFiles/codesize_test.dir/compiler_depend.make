# Empty compiler generated dependencies file for codesize_test.
# This may be replaced when dependencies are built.
