file(REMOVE_RECURSE
  "CMakeFiles/unfolding_test.dir/unfolding_test.cpp.o"
  "CMakeFiles/unfolding_test.dir/unfolding_test.cpp.o.d"
  "unfolding_test"
  "unfolding_test.pdb"
  "unfolding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unfolding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
