
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tradeoff_test.cpp" "tests/CMakeFiles/tradeoff_test.dir/tradeoff_test.cpp.o" "gcc" "tests/CMakeFiles/tradeoff_test.dir/tradeoff_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchmarks/CMakeFiles/csr_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/codesize/CMakeFiles/csr_codesize.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/csr_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/csr_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/loopir/CMakeFiles/csr_loopir.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/csr_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/unfolding/CMakeFiles/csr_unfolding.dir/DependInfo.cmake"
  "/root/repo/build/src/retiming/CMakeFiles/csr_retiming.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/csr_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
