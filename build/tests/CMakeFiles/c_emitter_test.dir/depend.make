# Empty dependencies file for c_emitter_test.
# This may be replaced when dependencies are built.
