file(REMOVE_RECURSE
  "CMakeFiles/c_emitter_test.dir/c_emitter_test.cpp.o"
  "CMakeFiles/c_emitter_test.dir/c_emitter_test.cpp.o.d"
  "c_emitter_test"
  "c_emitter_test.pdb"
  "c_emitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c_emitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
