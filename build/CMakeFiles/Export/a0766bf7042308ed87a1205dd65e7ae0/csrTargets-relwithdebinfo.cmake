#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "csr::support" for configuration "RelWithDebInfo"
set_property(TARGET csr::support APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::support PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_support.a"
  )

list(APPEND _cmake_import_check_targets csr::support )
list(APPEND _cmake_import_check_files_for_csr::support "${_IMPORT_PREFIX}/lib/libcsr_support.a" )

# Import target "csr::dfg" for configuration "RelWithDebInfo"
set_property(TARGET csr::dfg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::dfg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_dfg.a"
  )

list(APPEND _cmake_import_check_targets csr::dfg )
list(APPEND _cmake_import_check_files_for_csr::dfg "${_IMPORT_PREFIX}/lib/libcsr_dfg.a" )

# Import target "csr::retiming" for configuration "RelWithDebInfo"
set_property(TARGET csr::retiming APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::retiming PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_retiming.a"
  )

list(APPEND _cmake_import_check_targets csr::retiming )
list(APPEND _cmake_import_check_files_for_csr::retiming "${_IMPORT_PREFIX}/lib/libcsr_retiming.a" )

# Import target "csr::unfolding" for configuration "RelWithDebInfo"
set_property(TARGET csr::unfolding APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::unfolding PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_unfolding.a"
  )

list(APPEND _cmake_import_check_targets csr::unfolding )
list(APPEND _cmake_import_check_files_for_csr::unfolding "${_IMPORT_PREFIX}/lib/libcsr_unfolding.a" )

# Import target "csr::schedule" for configuration "RelWithDebInfo"
set_property(TARGET csr::schedule APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::schedule PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_schedule.a"
  )

list(APPEND _cmake_import_check_targets csr::schedule )
list(APPEND _cmake_import_check_files_for_csr::schedule "${_IMPORT_PREFIX}/lib/libcsr_schedule.a" )

# Import target "csr::loopir" for configuration "RelWithDebInfo"
set_property(TARGET csr::loopir APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::loopir PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_loopir.a"
  )

list(APPEND _cmake_import_check_targets csr::loopir )
list(APPEND _cmake_import_check_files_for_csr::loopir "${_IMPORT_PREFIX}/lib/libcsr_loopir.a" )

# Import target "csr::codegen" for configuration "RelWithDebInfo"
set_property(TARGET csr::codegen APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::codegen PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_codegen.a"
  )

list(APPEND _cmake_import_check_targets csr::codegen )
list(APPEND _cmake_import_check_files_for_csr::codegen "${_IMPORT_PREFIX}/lib/libcsr_codegen.a" )

# Import target "csr::vm" for configuration "RelWithDebInfo"
set_property(TARGET csr::vm APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::vm PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_vm.a"
  )

list(APPEND _cmake_import_check_targets csr::vm )
list(APPEND _cmake_import_check_files_for_csr::vm "${_IMPORT_PREFIX}/lib/libcsr_vm.a" )

# Import target "csr::codesize" for configuration "RelWithDebInfo"
set_property(TARGET csr::codesize APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::codesize PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_codesize.a"
  )

list(APPEND _cmake_import_check_targets csr::codesize )
list(APPEND _cmake_import_check_files_for_csr::codesize "${_IMPORT_PREFIX}/lib/libcsr_codesize.a" )

# Import target "csr::benchmarks" for configuration "RelWithDebInfo"
set_property(TARGET csr::benchmarks APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(csr::benchmarks PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcsr_benchmarks.a"
  )

list(APPEND _cmake_import_check_targets csr::benchmarks )
list(APPEND _cmake_import_check_files_for_csr::benchmarks "${_IMPORT_PREFIX}/lib/libcsr_benchmarks.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
