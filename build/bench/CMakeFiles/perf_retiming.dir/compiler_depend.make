# Empty compiler generated dependencies file for perf_retiming.
# This may be replaced when dependencies are built.
