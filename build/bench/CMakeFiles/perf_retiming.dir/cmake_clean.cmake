file(REMOVE_RECURSE
  "CMakeFiles/perf_retiming.dir/perf_retiming.cpp.o"
  "CMakeFiles/perf_retiming.dir/perf_retiming.cpp.o.d"
  "perf_retiming"
  "perf_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
