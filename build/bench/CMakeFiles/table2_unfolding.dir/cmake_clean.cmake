file(REMOVE_RECURSE
  "CMakeFiles/table2_unfolding.dir/table2_unfolding.cpp.o"
  "CMakeFiles/table2_unfolding.dir/table2_unfolding.cpp.o.d"
  "table2_unfolding"
  "table2_unfolding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_unfolding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
