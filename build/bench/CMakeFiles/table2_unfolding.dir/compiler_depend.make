# Empty compiler generated dependencies file for table2_unfolding.
# This may be replaced when dependencies are built.
