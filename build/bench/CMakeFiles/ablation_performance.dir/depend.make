# Empty dependencies file for ablation_performance.
# This may be replaced when dependencies are built.
