file(REMOVE_RECURSE
  "CMakeFiles/ablation_performance.dir/ablation_performance.cpp.o"
  "CMakeFiles/ablation_performance.dir/ablation_performance.cpp.o.d"
  "ablation_performance"
  "ablation_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
