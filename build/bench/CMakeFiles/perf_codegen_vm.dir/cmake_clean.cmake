file(REMOVE_RECURSE
  "CMakeFiles/perf_codegen_vm.dir/perf_codegen_vm.cpp.o"
  "CMakeFiles/perf_codegen_vm.dir/perf_codegen_vm.cpp.o.d"
  "perf_codegen_vm"
  "perf_codegen_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_codegen_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
