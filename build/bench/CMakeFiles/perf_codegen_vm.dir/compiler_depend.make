# Empty compiler generated dependencies file for perf_codegen_vm.
# This may be replaced when dependencies are built.
