# Empty compiler generated dependencies file for baseline_collapsing.
# This may be replaced when dependencies are built.
