file(REMOVE_RECURSE
  "CMakeFiles/baseline_collapsing.dir/baseline_collapsing.cpp.o"
  "CMakeFiles/baseline_collapsing.dir/baseline_collapsing.cpp.o.d"
  "baseline_collapsing"
  "baseline_collapsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_collapsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
