file(REMOVE_RECURSE
  "CMakeFiles/table3_ordering.dir/table3_ordering.cpp.o"
  "CMakeFiles/table3_ordering.dir/table3_ordering.cpp.o.d"
  "table3_ordering"
  "table3_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
