# Empty dependencies file for table3_ordering.
# This may be replaced when dependencies are built.
