# Empty dependencies file for figure3_codegen.
# This may be replaced when dependencies are built.
