file(REMOVE_RECURSE
  "CMakeFiles/figure3_codegen.dir/figure3_codegen.cpp.o"
  "CMakeFiles/figure3_codegen.dir/figure3_codegen.cpp.o.d"
  "figure3_codegen"
  "figure3_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
