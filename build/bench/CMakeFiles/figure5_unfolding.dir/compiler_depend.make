# Empty compiler generated dependencies file for figure5_unfolding.
# This may be replaced when dependencies are built.
