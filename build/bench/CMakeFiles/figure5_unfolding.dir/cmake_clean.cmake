file(REMOVE_RECURSE
  "CMakeFiles/figure5_unfolding.dir/figure5_unfolding.cpp.o"
  "CMakeFiles/figure5_unfolding.dir/figure5_unfolding.cpp.o.d"
  "figure5_unfolding"
  "figure5_unfolding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_unfolding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
