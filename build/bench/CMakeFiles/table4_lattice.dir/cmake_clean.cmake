file(REMOVE_RECURSE
  "CMakeFiles/table4_lattice.dir/table4_lattice.cpp.o"
  "CMakeFiles/table4_lattice.dir/table4_lattice.cpp.o.d"
  "table4_lattice"
  "table4_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
