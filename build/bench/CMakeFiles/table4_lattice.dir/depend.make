# Empty dependencies file for table4_lattice.
# This may be replaced when dependencies are built.
