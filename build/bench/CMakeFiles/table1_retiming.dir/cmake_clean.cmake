file(REMOVE_RECURSE
  "CMakeFiles/table1_retiming.dir/table1_retiming.cpp.o"
  "CMakeFiles/table1_retiming.dir/table1_retiming.cpp.o.d"
  "table1_retiming"
  "table1_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
