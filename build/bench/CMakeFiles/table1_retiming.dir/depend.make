# Empty dependencies file for table1_retiming.
# This may be replaced when dependencies are built.
