# Empty dependencies file for ablation_tripcount.
# This may be replaced when dependencies are built.
