file(REMOVE_RECURSE
  "CMakeFiles/ablation_tripcount.dir/ablation_tripcount.cpp.o"
  "CMakeFiles/ablation_tripcount.dir/ablation_tripcount.cpp.o.d"
  "ablation_tripcount"
  "ablation_tripcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tripcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
