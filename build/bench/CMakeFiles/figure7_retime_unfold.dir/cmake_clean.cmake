file(REMOVE_RECURSE
  "CMakeFiles/figure7_retime_unfold.dir/figure7_retime_unfold.cpp.o"
  "CMakeFiles/figure7_retime_unfold.dir/figure7_retime_unfold.cpp.o.d"
  "figure7_retime_unfold"
  "figure7_retime_unfold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_retime_unfold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
