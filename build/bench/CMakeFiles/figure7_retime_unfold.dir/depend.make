# Empty dependencies file for figure7_retime_unfold.
# This may be replaced when dependencies are built.
