file(REMOVE_RECURSE
  "CMakeFiles/csr_codesize.dir/baselines.cpp.o"
  "CMakeFiles/csr_codesize.dir/baselines.cpp.o.d"
  "CMakeFiles/csr_codesize.dir/model.cpp.o"
  "CMakeFiles/csr_codesize.dir/model.cpp.o.d"
  "CMakeFiles/csr_codesize.dir/storage.cpp.o"
  "CMakeFiles/csr_codesize.dir/storage.cpp.o.d"
  "CMakeFiles/csr_codesize.dir/tradeoff.cpp.o"
  "CMakeFiles/csr_codesize.dir/tradeoff.cpp.o.d"
  "libcsr_codesize.a"
  "libcsr_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
