file(REMOVE_RECURSE
  "libcsr_codesize.a"
)
