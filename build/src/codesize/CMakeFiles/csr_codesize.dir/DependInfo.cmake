
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codesize/baselines.cpp" "src/codesize/CMakeFiles/csr_codesize.dir/baselines.cpp.o" "gcc" "src/codesize/CMakeFiles/csr_codesize.dir/baselines.cpp.o.d"
  "/root/repo/src/codesize/model.cpp" "src/codesize/CMakeFiles/csr_codesize.dir/model.cpp.o" "gcc" "src/codesize/CMakeFiles/csr_codesize.dir/model.cpp.o.d"
  "/root/repo/src/codesize/storage.cpp" "src/codesize/CMakeFiles/csr_codesize.dir/storage.cpp.o" "gcc" "src/codesize/CMakeFiles/csr_codesize.dir/storage.cpp.o.d"
  "/root/repo/src/codesize/tradeoff.cpp" "src/codesize/CMakeFiles/csr_codesize.dir/tradeoff.cpp.o" "gcc" "src/codesize/CMakeFiles/csr_codesize.dir/tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/csr_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/retiming/CMakeFiles/csr_retiming.dir/DependInfo.cmake"
  "/root/repo/build/src/unfolding/CMakeFiles/csr_unfolding.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
