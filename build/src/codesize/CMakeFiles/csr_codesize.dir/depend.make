# Empty dependencies file for csr_codesize.
# This may be replaced when dependencies are built.
