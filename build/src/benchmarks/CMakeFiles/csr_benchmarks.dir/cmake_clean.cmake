file(REMOVE_RECURSE
  "CMakeFiles/csr_benchmarks.dir/benchmarks.cpp.o"
  "CMakeFiles/csr_benchmarks.dir/benchmarks.cpp.o.d"
  "libcsr_benchmarks.a"
  "libcsr_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
