# Empty dependencies file for csr_benchmarks.
# This may be replaced when dependencies are built.
