file(REMOVE_RECURSE
  "libcsr_benchmarks.a"
)
