
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loopir/optimizer.cpp" "src/loopir/CMakeFiles/csr_loopir.dir/optimizer.cpp.o" "gcc" "src/loopir/CMakeFiles/csr_loopir.dir/optimizer.cpp.o.d"
  "/root/repo/src/loopir/printer.cpp" "src/loopir/CMakeFiles/csr_loopir.dir/printer.cpp.o" "gcc" "src/loopir/CMakeFiles/csr_loopir.dir/printer.cpp.o.d"
  "/root/repo/src/loopir/program.cpp" "src/loopir/CMakeFiles/csr_loopir.dir/program.cpp.o" "gcc" "src/loopir/CMakeFiles/csr_loopir.dir/program.cpp.o.d"
  "/root/repo/src/loopir/serialize.cpp" "src/loopir/CMakeFiles/csr_loopir.dir/serialize.cpp.o" "gcc" "src/loopir/CMakeFiles/csr_loopir.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/csr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
