# Empty compiler generated dependencies file for csr_loopir.
# This may be replaced when dependencies are built.
