file(REMOVE_RECURSE
  "libcsr_loopir.a"
)
