file(REMOVE_RECURSE
  "CMakeFiles/csr_loopir.dir/optimizer.cpp.o"
  "CMakeFiles/csr_loopir.dir/optimizer.cpp.o.d"
  "CMakeFiles/csr_loopir.dir/printer.cpp.o"
  "CMakeFiles/csr_loopir.dir/printer.cpp.o.d"
  "CMakeFiles/csr_loopir.dir/program.cpp.o"
  "CMakeFiles/csr_loopir.dir/program.cpp.o.d"
  "CMakeFiles/csr_loopir.dir/serialize.cpp.o"
  "CMakeFiles/csr_loopir.dir/serialize.cpp.o.d"
  "libcsr_loopir.a"
  "libcsr_loopir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_loopir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
