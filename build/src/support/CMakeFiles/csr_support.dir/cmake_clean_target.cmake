file(REMOVE_RECURSE
  "libcsr_support.a"
)
