file(REMOVE_RECURSE
  "CMakeFiles/csr_support.dir/rational.cpp.o"
  "CMakeFiles/csr_support.dir/rational.cpp.o.d"
  "CMakeFiles/csr_support.dir/rng.cpp.o"
  "CMakeFiles/csr_support.dir/rng.cpp.o.d"
  "CMakeFiles/csr_support.dir/text.cpp.o"
  "CMakeFiles/csr_support.dir/text.cpp.o.d"
  "libcsr_support.a"
  "libcsr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
