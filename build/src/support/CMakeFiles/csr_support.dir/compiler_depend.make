# Empty compiler generated dependencies file for csr_support.
# This may be replaced when dependencies are built.
