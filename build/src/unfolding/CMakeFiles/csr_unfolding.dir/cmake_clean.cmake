file(REMOVE_RECURSE
  "CMakeFiles/csr_unfolding.dir/unfold.cpp.o"
  "CMakeFiles/csr_unfolding.dir/unfold.cpp.o.d"
  "libcsr_unfolding.a"
  "libcsr_unfolding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_unfolding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
