# Empty dependencies file for csr_unfolding.
# This may be replaced when dependencies are built.
