file(REMOVE_RECURSE
  "libcsr_unfolding.a"
)
