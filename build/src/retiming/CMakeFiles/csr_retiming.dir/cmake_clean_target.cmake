file(REMOVE_RECURSE
  "libcsr_retiming.a"
)
