
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retiming/constraints.cpp" "src/retiming/CMakeFiles/csr_retiming.dir/constraints.cpp.o" "gcc" "src/retiming/CMakeFiles/csr_retiming.dir/constraints.cpp.o.d"
  "/root/repo/src/retiming/diagnostics.cpp" "src/retiming/CMakeFiles/csr_retiming.dir/diagnostics.cpp.o" "gcc" "src/retiming/CMakeFiles/csr_retiming.dir/diagnostics.cpp.o.d"
  "/root/repo/src/retiming/min_storage.cpp" "src/retiming/CMakeFiles/csr_retiming.dir/min_storage.cpp.o" "gcc" "src/retiming/CMakeFiles/csr_retiming.dir/min_storage.cpp.o.d"
  "/root/repo/src/retiming/opt.cpp" "src/retiming/CMakeFiles/csr_retiming.dir/opt.cpp.o" "gcc" "src/retiming/CMakeFiles/csr_retiming.dir/opt.cpp.o.d"
  "/root/repo/src/retiming/retiming.cpp" "src/retiming/CMakeFiles/csr_retiming.dir/retiming.cpp.o" "gcc" "src/retiming/CMakeFiles/csr_retiming.dir/retiming.cpp.o.d"
  "/root/repo/src/retiming/wd.cpp" "src/retiming/CMakeFiles/csr_retiming.dir/wd.cpp.o" "gcc" "src/retiming/CMakeFiles/csr_retiming.dir/wd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/csr_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
