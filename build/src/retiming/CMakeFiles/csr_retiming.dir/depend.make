# Empty dependencies file for csr_retiming.
# This may be replaced when dependencies are built.
