file(REMOVE_RECURSE
  "CMakeFiles/csr_retiming.dir/constraints.cpp.o"
  "CMakeFiles/csr_retiming.dir/constraints.cpp.o.d"
  "CMakeFiles/csr_retiming.dir/diagnostics.cpp.o"
  "CMakeFiles/csr_retiming.dir/diagnostics.cpp.o.d"
  "CMakeFiles/csr_retiming.dir/min_storage.cpp.o"
  "CMakeFiles/csr_retiming.dir/min_storage.cpp.o.d"
  "CMakeFiles/csr_retiming.dir/opt.cpp.o"
  "CMakeFiles/csr_retiming.dir/opt.cpp.o.d"
  "CMakeFiles/csr_retiming.dir/retiming.cpp.o"
  "CMakeFiles/csr_retiming.dir/retiming.cpp.o.d"
  "CMakeFiles/csr_retiming.dir/wd.cpp.o"
  "CMakeFiles/csr_retiming.dir/wd.cpp.o.d"
  "libcsr_retiming.a"
  "libcsr_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
