file(REMOVE_RECURSE
  "libcsr_schedule.a"
)
