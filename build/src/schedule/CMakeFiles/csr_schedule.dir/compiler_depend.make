# Empty compiler generated dependencies file for csr_schedule.
# This may be replaced when dependencies are built.
