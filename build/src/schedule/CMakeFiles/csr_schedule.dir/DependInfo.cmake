
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/list_scheduler.cpp" "src/schedule/CMakeFiles/csr_schedule.dir/list_scheduler.cpp.o" "gcc" "src/schedule/CMakeFiles/csr_schedule.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/schedule/modulo.cpp" "src/schedule/CMakeFiles/csr_schedule.dir/modulo.cpp.o" "gcc" "src/schedule/CMakeFiles/csr_schedule.dir/modulo.cpp.o.d"
  "/root/repo/src/schedule/resources.cpp" "src/schedule/CMakeFiles/csr_schedule.dir/resources.cpp.o" "gcc" "src/schedule/CMakeFiles/csr_schedule.dir/resources.cpp.o.d"
  "/root/repo/src/schedule/rotation.cpp" "src/schedule/CMakeFiles/csr_schedule.dir/rotation.cpp.o" "gcc" "src/schedule/CMakeFiles/csr_schedule.dir/rotation.cpp.o.d"
  "/root/repo/src/schedule/schedule.cpp" "src/schedule/CMakeFiles/csr_schedule.dir/schedule.cpp.o" "gcc" "src/schedule/CMakeFiles/csr_schedule.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/csr_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/retiming/CMakeFiles/csr_retiming.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
