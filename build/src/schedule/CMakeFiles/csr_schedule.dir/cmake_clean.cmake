file(REMOVE_RECURSE
  "CMakeFiles/csr_schedule.dir/list_scheduler.cpp.o"
  "CMakeFiles/csr_schedule.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/csr_schedule.dir/modulo.cpp.o"
  "CMakeFiles/csr_schedule.dir/modulo.cpp.o.d"
  "CMakeFiles/csr_schedule.dir/resources.cpp.o"
  "CMakeFiles/csr_schedule.dir/resources.cpp.o.d"
  "CMakeFiles/csr_schedule.dir/rotation.cpp.o"
  "CMakeFiles/csr_schedule.dir/rotation.cpp.o.d"
  "CMakeFiles/csr_schedule.dir/schedule.cpp.o"
  "CMakeFiles/csr_schedule.dir/schedule.cpp.o.d"
  "libcsr_schedule.a"
  "libcsr_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
