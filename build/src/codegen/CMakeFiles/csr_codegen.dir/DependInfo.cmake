
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/c_emitter.cpp" "src/codegen/CMakeFiles/csr_codegen.dir/c_emitter.cpp.o" "gcc" "src/codegen/CMakeFiles/csr_codegen.dir/c_emitter.cpp.o.d"
  "/root/repo/src/codegen/original.cpp" "src/codegen/CMakeFiles/csr_codegen.dir/original.cpp.o" "gcc" "src/codegen/CMakeFiles/csr_codegen.dir/original.cpp.o.d"
  "/root/repo/src/codegen/registers.cpp" "src/codegen/CMakeFiles/csr_codegen.dir/registers.cpp.o" "gcc" "src/codegen/CMakeFiles/csr_codegen.dir/registers.cpp.o.d"
  "/root/repo/src/codegen/retimed.cpp" "src/codegen/CMakeFiles/csr_codegen.dir/retimed.cpp.o" "gcc" "src/codegen/CMakeFiles/csr_codegen.dir/retimed.cpp.o.d"
  "/root/repo/src/codegen/retimed_unfolded.cpp" "src/codegen/CMakeFiles/csr_codegen.dir/retimed_unfolded.cpp.o" "gcc" "src/codegen/CMakeFiles/csr_codegen.dir/retimed_unfolded.cpp.o.d"
  "/root/repo/src/codegen/statements.cpp" "src/codegen/CMakeFiles/csr_codegen.dir/statements.cpp.o" "gcc" "src/codegen/CMakeFiles/csr_codegen.dir/statements.cpp.o.d"
  "/root/repo/src/codegen/unfolded.cpp" "src/codegen/CMakeFiles/csr_codegen.dir/unfolded.cpp.o" "gcc" "src/codegen/CMakeFiles/csr_codegen.dir/unfolded.cpp.o.d"
  "/root/repo/src/codegen/unfolded_retimed.cpp" "src/codegen/CMakeFiles/csr_codegen.dir/unfolded_retimed.cpp.o" "gcc" "src/codegen/CMakeFiles/csr_codegen.dir/unfolded_retimed.cpp.o.d"
  "/root/repo/src/codegen/vliw.cpp" "src/codegen/CMakeFiles/csr_codegen.dir/vliw.cpp.o" "gcc" "src/codegen/CMakeFiles/csr_codegen.dir/vliw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/csr_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/retiming/CMakeFiles/csr_retiming.dir/DependInfo.cmake"
  "/root/repo/build/src/unfolding/CMakeFiles/csr_unfolding.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/csr_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/loopir/CMakeFiles/csr_loopir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
