file(REMOVE_RECURSE
  "CMakeFiles/csr_codegen.dir/c_emitter.cpp.o"
  "CMakeFiles/csr_codegen.dir/c_emitter.cpp.o.d"
  "CMakeFiles/csr_codegen.dir/original.cpp.o"
  "CMakeFiles/csr_codegen.dir/original.cpp.o.d"
  "CMakeFiles/csr_codegen.dir/registers.cpp.o"
  "CMakeFiles/csr_codegen.dir/registers.cpp.o.d"
  "CMakeFiles/csr_codegen.dir/retimed.cpp.o"
  "CMakeFiles/csr_codegen.dir/retimed.cpp.o.d"
  "CMakeFiles/csr_codegen.dir/retimed_unfolded.cpp.o"
  "CMakeFiles/csr_codegen.dir/retimed_unfolded.cpp.o.d"
  "CMakeFiles/csr_codegen.dir/statements.cpp.o"
  "CMakeFiles/csr_codegen.dir/statements.cpp.o.d"
  "CMakeFiles/csr_codegen.dir/unfolded.cpp.o"
  "CMakeFiles/csr_codegen.dir/unfolded.cpp.o.d"
  "CMakeFiles/csr_codegen.dir/unfolded_retimed.cpp.o"
  "CMakeFiles/csr_codegen.dir/unfolded_retimed.cpp.o.d"
  "CMakeFiles/csr_codegen.dir/vliw.cpp.o"
  "CMakeFiles/csr_codegen.dir/vliw.cpp.o.d"
  "libcsr_codegen.a"
  "libcsr_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
