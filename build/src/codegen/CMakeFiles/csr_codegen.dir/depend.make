# Empty dependencies file for csr_codegen.
# This may be replaced when dependencies are built.
