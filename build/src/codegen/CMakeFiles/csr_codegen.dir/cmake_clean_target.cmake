file(REMOVE_RECURSE
  "libcsr_codegen.a"
)
