file(REMOVE_RECURSE
  "libcsr_dfg.a"
)
