# Empty compiler generated dependencies file for csr_dfg.
# This may be replaced when dependencies are built.
