
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/algorithms.cpp" "src/dfg/CMakeFiles/csr_dfg.dir/algorithms.cpp.o" "gcc" "src/dfg/CMakeFiles/csr_dfg.dir/algorithms.cpp.o.d"
  "/root/repo/src/dfg/builders.cpp" "src/dfg/CMakeFiles/csr_dfg.dir/builders.cpp.o" "gcc" "src/dfg/CMakeFiles/csr_dfg.dir/builders.cpp.o.d"
  "/root/repo/src/dfg/dot.cpp" "src/dfg/CMakeFiles/csr_dfg.dir/dot.cpp.o" "gcc" "src/dfg/CMakeFiles/csr_dfg.dir/dot.cpp.o.d"
  "/root/repo/src/dfg/graph.cpp" "src/dfg/CMakeFiles/csr_dfg.dir/graph.cpp.o" "gcc" "src/dfg/CMakeFiles/csr_dfg.dir/graph.cpp.o.d"
  "/root/repo/src/dfg/io.cpp" "src/dfg/CMakeFiles/csr_dfg.dir/io.cpp.o" "gcc" "src/dfg/CMakeFiles/csr_dfg.dir/io.cpp.o.d"
  "/root/repo/src/dfg/iteration_bound.cpp" "src/dfg/CMakeFiles/csr_dfg.dir/iteration_bound.cpp.o" "gcc" "src/dfg/CMakeFiles/csr_dfg.dir/iteration_bound.cpp.o.d"
  "/root/repo/src/dfg/random.cpp" "src/dfg/CMakeFiles/csr_dfg.dir/random.cpp.o" "gcc" "src/dfg/CMakeFiles/csr_dfg.dir/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/csr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
