file(REMOVE_RECURSE
  "CMakeFiles/csr_dfg.dir/algorithms.cpp.o"
  "CMakeFiles/csr_dfg.dir/algorithms.cpp.o.d"
  "CMakeFiles/csr_dfg.dir/builders.cpp.o"
  "CMakeFiles/csr_dfg.dir/builders.cpp.o.d"
  "CMakeFiles/csr_dfg.dir/dot.cpp.o"
  "CMakeFiles/csr_dfg.dir/dot.cpp.o.d"
  "CMakeFiles/csr_dfg.dir/graph.cpp.o"
  "CMakeFiles/csr_dfg.dir/graph.cpp.o.d"
  "CMakeFiles/csr_dfg.dir/io.cpp.o"
  "CMakeFiles/csr_dfg.dir/io.cpp.o.d"
  "CMakeFiles/csr_dfg.dir/iteration_bound.cpp.o"
  "CMakeFiles/csr_dfg.dir/iteration_bound.cpp.o.d"
  "CMakeFiles/csr_dfg.dir/random.cpp.o"
  "CMakeFiles/csr_dfg.dir/random.cpp.o.d"
  "libcsr_dfg.a"
  "libcsr_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
