
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/equivalence.cpp" "src/vm/CMakeFiles/csr_vm.dir/equivalence.cpp.o" "gcc" "src/vm/CMakeFiles/csr_vm.dir/equivalence.cpp.o.d"
  "/root/repo/src/vm/machine.cpp" "src/vm/CMakeFiles/csr_vm.dir/machine.cpp.o" "gcc" "src/vm/CMakeFiles/csr_vm.dir/machine.cpp.o.d"
  "/root/repo/src/vm/trace.cpp" "src/vm/CMakeFiles/csr_vm.dir/trace.cpp.o" "gcc" "src/vm/CMakeFiles/csr_vm.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/loopir/CMakeFiles/csr_loopir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
