file(REMOVE_RECURSE
  "libcsr_vm.a"
)
