# Empty dependencies file for csr_vm.
# This may be replaced when dependencies are built.
