file(REMOVE_RECURSE
  "CMakeFiles/csr_vm.dir/equivalence.cpp.o"
  "CMakeFiles/csr_vm.dir/equivalence.cpp.o.d"
  "CMakeFiles/csr_vm.dir/machine.cpp.o"
  "CMakeFiles/csr_vm.dir/machine.cpp.o.d"
  "CMakeFiles/csr_vm.dir/trace.cpp.o"
  "CMakeFiles/csr_vm.dir/trace.cpp.o.d"
  "libcsr_vm.a"
  "libcsr_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
