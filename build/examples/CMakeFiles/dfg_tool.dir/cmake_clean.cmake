file(REMOVE_RECURSE
  "CMakeFiles/dfg_tool.dir/dfg_tool.cpp.o"
  "CMakeFiles/dfg_tool.dir/dfg_tool.cpp.o.d"
  "dfg_tool"
  "dfg_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfg_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
