# Empty compiler generated dependencies file for dfg_tool.
# This may be replaced when dependencies are built.
