file(REMOVE_RECURSE
  "CMakeFiles/emit_c_kernels.dir/emit_c_kernels.cpp.o"
  "CMakeFiles/emit_c_kernels.dir/emit_c_kernels.cpp.o.d"
  "emit_c_kernels"
  "emit_c_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_c_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
