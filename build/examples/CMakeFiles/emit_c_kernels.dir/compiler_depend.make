# Empty compiler generated dependencies file for emit_c_kernels.
# This may be replaced when dependencies are built.
