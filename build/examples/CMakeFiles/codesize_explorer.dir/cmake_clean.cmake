file(REMOVE_RECURSE
  "CMakeFiles/codesize_explorer.dir/codesize_explorer.cpp.o"
  "CMakeFiles/codesize_explorer.dir/codesize_explorer.cpp.o.d"
  "codesize_explorer"
  "codesize_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesize_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
