# Empty compiler generated dependencies file for codesize_explorer.
# This may be replaced when dependencies are built.
