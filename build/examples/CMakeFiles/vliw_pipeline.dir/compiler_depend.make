# Empty compiler generated dependencies file for vliw_pipeline.
# This may be replaced when dependencies are built.
