# Empty dependencies file for vliw_pipeline.
# This may be replaced when dependencies are built.
