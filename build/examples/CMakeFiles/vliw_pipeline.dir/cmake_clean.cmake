file(REMOVE_RECURSE
  "CMakeFiles/vliw_pipeline.dir/vliw_pipeline.cpp.o"
  "CMakeFiles/vliw_pipeline.dir/vliw_pipeline.cpp.o.d"
  "vliw_pipeline"
  "vliw_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
